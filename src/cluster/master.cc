#include "cluster/master.h"

#include <algorithm>
#include <array>
#include <set>

#include "common/logging.h"
#include "common/units.h"
#include "fault/fault.h"
#include "namespacefs/fsimage.h"
#include "namespacefs/path.h"

namespace octo {

namespace {
const UserContext kSuperuser{"root", {}};
}  // namespace

Master::Master(MasterOptions options, Clock* clock)
    : options_(std::move(options)),
      clock_(clock),
      rng_(options_.seed),
      tree_(std::make_unique<NamespaceTree>(clock)),
      leases_(clock, options_.lease_duration_micros),
      repair_(options_.repair, options_.seed) {
  tree_->EnablePermissions(options_.enable_permissions);
  // The in-flight copy deadline is the (jittered) replication timeout.
  RepairThrottleOptions throttle = options_.repair;
  throttle.copy_deadline_micros = options_.replication_timeout_micros;
  repair_.set_options(throttle);
  if (!options_.metadata_dir.empty()) {
    auto opened = EditLog::OpenSegmented(options_.metadata_dir);
    OCTO_CHECK(opened.ok()) << opened.status().ToString();
    log_ = std::move(opened).value();
    auto images =
        ImageStore::Open(options_.metadata_dir, options_.images_retained);
    OCTO_CHECK(images.ok()) << images.status().ToString();
    images_ = std::move(images).value();
  } else if (options_.edit_log_path.empty()) {
    log_ = std::make_unique<EditLog>();
  } else {
    auto opened = EditLog::Open(options_.edit_log_path);
    OCTO_CHECK(opened.ok()) << opened.status().ToString();
    log_ = std::move(opened).value();
  }
  MoopOptions moop;
  moop.mode = options_.placement_mode;
  placement_ = MakeMoopPolicy(moop);
  retrieval_ = MakeOctopusRetrievalPolicy();
  // The Master group-commits: every mutation calls log_->Commit() before
  // acknowledging, so the per-record flush would only add syscalls.
  log_->SetSyncEachRecord(false);
}

void Master::SetPlacementPolicy(std::unique_ptr<PlacementPolicy> policy) {
  OCTO_CHECK(policy != nullptr);
  std::lock_guard<std::mutex> service(service_mu_);
  placement_ = std::move(policy);
}

void Master::SetRetrievalPolicy(std::unique_ptr<RetrievalPolicy> policy) {
  OCTO_CHECK(policy != nullptr);
  std::lock_guard<std::mutex> service(service_mu_);
  retrieval_ = std::move(policy);
}

void Master::DefineTier(TierInfo tier) {
  std::lock_guard<std::mutex> service(service_mu_);
  state_.AddTier(std::move(tier));
}

Result<WorkerId> Master::RegisterWorker(const NetworkLocation& location,
                                        double net_bps) {
  std::lock_guard<std::mutex> service(service_mu_);
  OCTO_RETURN_IF_ERROR(topology_.AddNode(location));
  WorkerId id = next_worker_id_++;
  WorkerInfo info;
  info.id = id;
  info.location = location;
  info.net_bps = net_bps;
  info.alive = true;
  info.last_heartbeat_micros = clock_->NowMicros();
  OCTO_RETURN_IF_ERROR(state_.AddWorker(std::move(info)));
  return id;
}

Result<MediumId> Master::RegisterMedium(WorkerId worker,
                                        const MediumSpec& spec,
                                        const ProfiledRates& profiled) {
  std::lock_guard<std::mutex> service(service_mu_);
  const WorkerInfo* w = state_.FindWorker(worker);
  if (w == nullptr) {
    return Status::NotFound("worker " + std::to_string(worker));
  }
  if (state_.FindTier(spec.tier) == nullptr) {
    state_.AddTier(TierInfo{spec.tier, std::string(MediaTypeName(spec.type)),
                            spec.type});
  }
  MediumId id = next_medium_id_++;
  MediumInfo info;
  info.id = id;
  info.worker = worker;
  info.location = w->location;
  info.tier = spec.tier;
  info.type = spec.type;
  info.capacity_bytes = spec.capacity_bytes;
  info.remaining_bytes = spec.capacity_bytes;
  info.write_bps = profiled.write_bps > 0 ? profiled.write_bps : spec.write_bps;
  info.read_bps = profiled.read_bps > 0 ? profiled.read_bps : spec.read_bps;
  OCTO_RETURN_IF_ERROR(state_.AddMedium(std::move(info)));
  return id;
}

Status Master::ReRegisterWorker(WorkerId id, const NetworkLocation& location,
                                double net_bps) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (state_.FindWorker(id) != nullptr) return Status::OK();
  Status st = topology_.AddNode(location);
  if (!st.ok() && !st.IsAlreadyExists()) return st;
  WorkerInfo info;
  info.id = id;
  info.location = location;
  info.net_bps = net_bps;
  info.alive = true;
  info.last_heartbeat_micros = clock_->NowMicros();
  OCTO_RETURN_IF_ERROR(state_.AddWorker(std::move(info)));
  if (id >= next_worker_id_) next_worker_id_ = id + 1;
  return Status::OK();
}

Status Master::ReRegisterMedium(WorkerId worker, MediumId id,
                                const MediumSpec& spec,
                                const ProfiledRates& profiled) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (state_.FindMedium(id) != nullptr) return Status::OK();
  const WorkerInfo* w = state_.FindWorker(worker);
  if (w == nullptr) {
    return Status::NotFound("worker " + std::to_string(worker));
  }
  if (state_.FindTier(spec.tier) == nullptr) {
    state_.AddTier(TierInfo{spec.tier, std::string(MediaTypeName(spec.type)),
                            spec.type});
  }
  MediumInfo info;
  info.id = id;
  info.worker = worker;
  info.location = w->location;
  info.tier = spec.tier;
  info.type = spec.type;
  info.capacity_bytes = spec.capacity_bytes;
  info.remaining_bytes = spec.capacity_bytes;
  info.write_bps = profiled.write_bps > 0 ? profiled.write_bps : spec.write_bps;
  info.read_bps = profiled.read_bps > 0 ? profiled.read_bps : spec.read_bps;
  OCTO_RETURN_IF_ERROR(state_.AddMedium(std::move(info)));
  if (id >= next_medium_id_) next_medium_id_ = id + 1;
  return Status::OK();
}

void Master::RecordFileAccess(uint64_t file_id, const std::string& path,
                              int64_t accesses, int64_t bytes) {
  if (file_id == 0 || !access_stats_enabled()) return;
  std::lock_guard<std::mutex> lock(access_mu_);
  FileAccessStat& stat = access_stats_[file_id];
  stat.file_id = file_id;
  stat.path = path;
  stat.accesses += accesses;
  stat.bytes_read += bytes;
}

std::vector<FileAccessStat> Master::DrainFileAccessStats() {
  std::map<uint64_t, FileAccessStat> drained;
  {
    std::lock_guard<std::mutex> lock(access_mu_);
    drained.swap(access_stats_);
  }
  std::vector<FileAccessStat> out;
  out.reserve(drained.size());
  for (auto& [id, stat] : drained) out.push_back(std::move(stat));
  return out;
}

void Master::NotifyRename(const std::string& src, const std::string& dst) {
  NamespaceEventListener* listener =
      namespace_listener_.load(std::memory_order_acquire);
  if (listener != nullptr) listener->OnRename(src, dst);
}

void Master::NotifyDelete(const std::string& path) {
  NamespaceEventListener* listener =
      namespace_listener_.load(std::memory_order_acquire);
  if (listener != nullptr) listener->OnDelete(path);
}

Status Master::ApplyHeartbeatStatsLocked(const HeartbeatPayload& hb) {
  const WorkerInfo* w = state_.FindWorker(hb.worker);
  if (w == nullptr) {
    return Status::NotFound("worker " + std::to_string(hb.worker));
  }
  OCTO_RETURN_IF_ERROR(state_.SetWorkerAlive(hb.worker, true));
  OCTO_RETURN_IF_ERROR(state_.UpdateWorkerStats(hb.worker, w->nr_connections,
                                                clock_->NowMicros()));
  for (const MediumStats& stats : hb.media) {
    const MediumInfo* m = state_.FindMedium(stats.medium);
    if (m == nullptr || m->worker != hb.worker) continue;
    OCTO_RETURN_IF_ERROR(state_.UpdateMediumStats(
        stats.medium, stats.remaining_bytes, m->nr_connections));
  }
  // Fold the worker-served read counters into per-file access stats (the
  // paper-sequel heat feed: per-block counts ride heartbeats, the master
  // attributes them to files via the block map). Blocks already deleted
  // or predating the file-id field are skipped.
  if (access_stats_enabled()) {
    for (const BlockReadStat& stat : hb.block_reads) {
      const BlockRecord* record = blocks_.Find(stat.block);
      if (record == nullptr) continue;
      RecordFileAccess(record->file_id, record->file, stat.count, stat.bytes);
    }
  }
  // Media whose device died (I/O errors): drop their replicas and
  // re-replicate from the surviving copies.
  for (MediumId medium : hb.failed_media) {
    const MediumInfo* m = state_.FindMedium(medium);
    if (m == nullptr || m->worker != hb.worker) continue;
    HandleFailedMedium(medium);
  }
  return Status::OK();
}

Result<std::vector<WorkerCommand>> Master::Heartbeat(
    const HeartbeatPayload& hb) {
  // Phase 1 (service lock): stats, failed media, bad replicas, and lease
  // reaping. Lease recovery itself runs between the phases because it
  // acquires namespace locks, which always come before the service lock.
  std::vector<std::string> expired;
  {
    std::lock_guard<std::mutex> service(service_mu_);
    uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    if (hb.master_epoch > epoch) {
      return Status::FailedPrecondition(
          "master deposed: worker " + std::to_string(hb.worker) +
          " is at epoch " + std::to_string(hb.master_epoch) +
          ", this master at " + std::to_string(epoch));
    }
    if (hb.master_epoch != 0 && hb.master_epoch < epoch) {
      return Status::FailedPrecondition(
          "stale epoch " + std::to_string(hb.master_epoch) + " from worker " +
          std::to_string(hb.worker) + " (current " + std::to_string(epoch) +
          "); re-register first");
    }
    OCTO_RETURN_IF_ERROR(ApplyHeartbeatStatsLocked(hb));
    // Corrupt replicas found by the worker's scrubber ride the heartbeat
    // (the DataNode's bad-block report). NotFound is fine: the replica may
    // already have been dropped via a client read report or RunScrubber.
    if (!in_safe_mode()) {
      for (const auto& [medium, block] : hb.bad_replicas) {
        Status st = ReportBadBlockLocked(block, medium);
        if (!st.ok() && !st.IsNotFound()) return st;
      }
      // Lease reaping piggy-backs on heartbeat processing: an expired
      // writer's file enters lease recovery — a recovery primary
      // reconciles the divergent tail-block replicas before the file is
      // completed (the HDFS recoverLease path). Trusting the writer's
      // last claim instead would register whatever length it happened to
      // report, even when the surviving replicas disagree. Skipped in
      // safe mode: reconstructed leases must not expire while the
      // cluster is still re-assembling its block map.
      expired = leases_.ReapExpired();
    }
  }
  for (const std::string& path : expired) {
    StartLeaseRecovery(path);
  }
  // Phase 2 (service lock again): deliver undelivered commands, and
  // redeliver any whose previous delivery expired unacknowledged (the
  // worker may have crashed between receiving and executing them).
  // Commands stay queued until AckCommand.
  std::vector<WorkerCommand> commands;
  {
    std::lock_guard<std::mutex> service(service_mu_);
    auto it = command_queues_.find(hb.worker);
    if (it != command_queues_.end()) {
      int64_t now = clock_->NowMicros();
      for (QueuedCommand& queued : it->second) {
        if (queued.delivered_micros < 0) {
          queued.delivered_micros = now;
          commands.push_back(queued.command);
        } else if (now - queued.delivered_micros >
                   options_.command_timeout_micros) {
          queued.delivered_micros = now;
          ++commands_redelivered_;
          commands.push_back(queued.command);
        }
      }
    }
  }
  // Flush any records lease recovery appended before acking the round.
  OCTO_RETURN_IF_ERROR(CommitJournal());
  return commands;
}

Status Master::AckCommand(WorkerId worker, uint64_t command_id) {
  std::lock_guard<std::mutex> service(service_mu_);
  auto it = command_queues_.find(worker);
  if (it != command_queues_.end()) {
    for (auto cmd = it->second.begin(); cmd != it->second.end(); ++cmd) {
      if (cmd->command.id == command_id) {
        it->second.erase(cmd);
        if (it->second.empty()) command_queues_.erase(it);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("command " + std::to_string(command_id) +
                          " for worker " + std::to_string(worker));
}

Status Master::ProcessBlockReport(WorkerId worker, const BlockReport& report,
                                  uint64_t reporter_epoch) {
  std::lock_guard<std::mutex> service(service_mu_);
  return ApplyBlockReportLocked(worker, report, reporter_epoch);
}

void Master::StageBlockReport(WorkerId worker, BlockReport report,
                              uint64_t reporter_epoch) {
  std::lock_guard<std::mutex> staging(staging_mu_);
  staged_reports_.push_back(
      StagedBlockReport{worker, std::move(report), reporter_epoch});
}

void Master::StageHeartbeatStats(HeartbeatPayload hb) {
  std::lock_guard<std::mutex> staging(staging_mu_);
  staged_heartbeats_.push_back(std::move(hb));
}

int Master::FlushStagedReports() {
  std::vector<HeartbeatPayload> heartbeats;
  std::vector<StagedBlockReport> reports;
  {
    std::lock_guard<std::mutex> staging(staging_mu_);
    heartbeats.swap(staged_heartbeats_);
    reports.swap(staged_reports_);
  }
  if (heartbeats.empty() && reports.empty()) return 0;
  int applied = 0;
  std::lock_guard<std::mutex> service(service_mu_);
  for (const HeartbeatPayload& hb : heartbeats) {
    uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    if (hb.master_epoch > epoch ||
        (hb.master_epoch != 0 && hb.master_epoch < epoch)) {
      continue;  // fenced: addressed to a different master incarnation
    }
    if (ApplyHeartbeatStatsLocked(hb).ok()) ++applied;
  }
  for (const StagedBlockReport& staged : reports) {
    if (ApplyBlockReportLocked(staged.worker, staged.report,
                               staged.reporter_epoch)
            .ok()) {
      ++applied;
    }
  }
  return applied;
}

Status Master::ApplyBlockReportLocked(WorkerId worker,
                                      const BlockReport& report,
                                      uint64_t reporter_epoch) {
  if (reporter_epoch != 0 && reporter_epoch != epoch()) {
    // Fencing both ways: a report addressed to a predecessor of this
    // master (reporter ahead) or built for a deposed one (reporter
    // behind) must not mutate the block map.
    return Status::FailedPrecondition(
        "block report from worker " + std::to_string(worker) + " at epoch " +
        std::to_string(reporter_epoch) + " rejected by master at epoch " +
        std::to_string(epoch()));
  }
  if (state_.FindWorker(worker) == nullptr) {
    return Status::NotFound("worker " + std::to_string(worker));
  }
  for (const auto& [medium, blocks] : report) {
    const MediumInfo* m = state_.FindMedium(medium);
    if (m == nullptr || m->worker != worker) {
      return Status::InvalidArgument("medium " + std::to_string(medium) +
                                     " does not belong to worker " +
                                     std::to_string(worker));
    }
    std::set<BlockId> reported;
    // Unknown replicas are orphans -> invalidate. Known but unregistered
    // replicas (e.g. after master recovery) are adopted — but only when
    // they carry the record's generation stamp and length and are
    // finalized; anything else missed a recovery and is stale.
    for (const ReplicaDescriptor& r : blocks) {
      reported.insert(r.block);
      // Under-construction blocks are the writer's business: their RBW
      // replicas are neither adopted nor invalidated until the block is
      // committed or recovered.
      if (pending_blocks_.count(r.block) > 0) continue;
      const BlockRecord* record = blocks_.Find(r.block);
      bool orphan = record == nullptr;
      bool stale = !orphan && !(r.finalized && r.genstamp == record->genstamp &&
                                r.length == record->length);
      if (orphan || stale) {
        if (stale &&
            std::find(record->locations.begin(), record->locations.end(),
                      medium) != record->locations.end()) {
          OCTO_RETURN_IF_ERROR(blocks_.RemoveReplica(r.block, medium));
          (void)state_.AdjustMediumRemaining(medium, record->length);
        }
        if (in_safe_mode()) {
          // The namespace may still be mid-reconstruction; destroying
          // bytes now could orphan the only copy of a block a later edit
          // replay or report legitimizes. Defer until safe-mode exit.
          // (Stale replicas never re-legitimize, but deferring their
          // invalidation too is harmless.)
          deferred_orphans_.insert({medium, r.block});
          continue;
        }
        WorkerCommand cmd;
        cmd.kind = WorkerCommand::Kind::kDeleteReplica;
        cmd.block = r.block;
        cmd.target_medium = medium;
        QueueCommand(medium, std::move(cmd));
        continue;
      }
      if (std::find(record->locations.begin(), record->locations.end(),
                    medium) == record->locations.end()) {
        OCTO_RETURN_IF_ERROR(blocks_.AddReplica(r.block, medium));
        if (inflight_copies_.erase({r.block, medium}) > 0) {
          repair_.NoteCompleted(r.block, medium);
        }
      }
    }
    // Replicas the map believes are here but the worker no longer has.
    for (BlockId b : blocks_.BlocksOnMedium(medium)) {
      if (reported.count(b) == 0) {
        OCTO_RETURN_IF_ERROR(blocks_.RemoveReplica(b, medium));
      }
    }
    // A full report is ground truth for this medium: any copy we thought
    // was in flight to it but which is not reported has failed — clear it
    // so the replication monitor re-schedules the repair.
    for (auto it = inflight_copies_.begin(); it != inflight_copies_.end();) {
      if (it->first.second == medium && reported.count(it->first.first) == 0) {
        pending_moves_.erase(it->first);
        // Charge a failed attempt (the target worker is likely sick) but
        // no cooldown: ground truth says nothing is pending there.
        repair_.NoteAborted(it->first.first, it->first.second,
                            RepairAbort::kFailedReported, clock_->NowMicros());
        it = inflight_copies_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (in_safe_mode()) MaybeExitSafeMode();
  return Status::OK();
}

std::vector<WorkerId> Master::CheckWorkerLiveness() {
  std::lock_guard<std::mutex> service(service_mu_);
  std::vector<WorkerId> newly_dead;
  int64_t now = clock_->NowMicros();
  for (const auto& [id, w] : state_.workers()) {
    if (w.alive &&
        now - w.last_heartbeat_micros > options_.worker_timeout_micros) {
      newly_dead.push_back(id);
    }
  }
  for (WorkerId id : newly_dead) {
    OCTO_CHECK_OK(state_.SetWorkerAlive(id, false));
    OCTO_LOG(Warn) << "worker " << id << " declared dead";
    // Its queued commands will never execute. Copies targeting the dead
    // worker release their in-flight bookkeeping so the monitor repairs
    // elsewhere; deletes are dropped (the worker's first block report
    // after a revival reconciles them).
    auto queue = command_queues_.find(id);
    if (queue != command_queues_.end()) {
      std::vector<QueuedCommand> commands = std::move(queue->second);
      command_queues_.erase(queue);
      for (const QueuedCommand& queued : commands) {
        if (queued.command.kind == WorkerCommand::Kind::kCopyReplica) {
          AbortInflightCopy(queued.command.block, queued.command.target_medium,
                            RepairAbort::kTargetLost);
        }
      }
    }
  }
  return newly_dead;
}

// ---------------------------------------------------------------------------
// Namespace operations

Status Master::Mkdirs(const std::string& path, const UserContext& ctx) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("mkdirs"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    // Optimistic flat attempt: when every ancestor already exists only the
    // parent and the new directory need exclusive locks. The tree refuses
    // (Unavailable) when deeper ancestors are missing — those creations
    // touch an unbounded prefix of the path, so escalate to a structural
    // lock and let Mkdirs create the whole chain.
    auto oplock = nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kMutate);
    Status st = tree_->Mkdirs(normalized, ctx, AncestorPolicy::kRequireExisting);
    if (st.IsUnavailable()) {
      oplock.Release();
      auto structural = nslocks_.LockStructural();
      OCTO_RETURN_IF_ERROR(tree_->Mkdirs(normalized, ctx));
      log_->LogMkdirs(normalized);
    } else {
      OCTO_RETURN_IF_ERROR(st);
      log_->LogMkdirs(normalized);
    }
  }
  return CommitJournal();
}

Result<std::vector<FileStatus>> Master::ListDirectory(
    const std::string& path, const UserContext& ctx) const {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  auto oplock = nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kRead);
  return tree_->ListDirectory(normalized, ctx);
}

Result<FileStatus> Master::GetFileStatus(const std::string& path,
                                         const UserContext& ctx) const {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  auto oplock = nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kRead);
  return tree_->GetFileStatus(normalized, ctx);
}

Status Master::Rename(const std::string& src, const std::string& dst,
                      const UserContext& ctx) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("rename"));
  OCTO_ASSIGN_OR_RETURN(std::string nsrc, NormalizePath(src));
  OCTO_ASSIGN_OR_RETURN(std::string ndst, NormalizePath(dst));
  {
    auto oplock = nslocks_.LockStructural();
    OCTO_RETURN_IF_ERROR(tree_->Rename(nsrc, ndst, ctx));
    log_->LogRename(nsrc, ndst);
    RecordRenameForCheckpoint(nsrc, ndst);
  }
  OCTO_RETURN_IF_ERROR(CommitJournal());
  NotifyRename(nsrc, ndst);
  return Status::OK();
}

Result<int> Master::Delete(const std::string& path, bool recursive,
                           const UserContext& ctx, bool skip_trash) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("delete"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  if (options_.enable_trash && !skip_trash &&
      !IsSelfOrDescendant("/.Trash", normalized)) {
    // Move into the user's trash, keeping the base name; disambiguate
    // collisions with a monotonically growing suffix. One structural lock
    // covers the mkdir + probe + rename, so the chosen target cannot be
    // taken by a concurrent delete of the same name.
    std::string trash_root = "/.Trash/" + ctx.user;
    std::string target;
    {
      auto oplock = nslocks_.LockStructural();
      OCTO_RETURN_IF_ERROR(tree_->Mkdirs(trash_root, ctx));
      log_->LogMkdirs(trash_root);
      target = trash_root + "/" + BaseName(normalized);
      int suffix = 1;
      while (tree_->Exists(target)) {
        target = trash_root + "/" + BaseName(normalized) + "." +
                 std::to_string(suffix++);
      }
      OCTO_RETURN_IF_ERROR(tree_->Rename(normalized, target, ctx));
      log_->LogRename(normalized, target);
      RecordRenameForCheckpoint(normalized, target);
    }
    OCTO_RETURN_IF_ERROR(CommitJournal());
    // Trash moves are renames: path-keyed soft state follows the file.
    NotifyRename(normalized, target);
    return 0;  // nothing invalidated; data is recoverable from trash
  }
  std::vector<BlockInfo> removed;
  {
    // A recursive delete detaches a whole subtree — its lock footprint is
    // not one prefix chain. Non-recursive deletes touch only parent +
    // terminal.
    auto oplock =
        recursive ? nslocks_.LockStructural()
                  : nslocks_.Lock(normalized,
                                  NamespaceLockManager::OpMode::kMutate);
    OCTO_ASSIGN_OR_RETURN(removed, tree_->Delete(normalized, recursive, ctx));
    log_->LogDelete(normalized, recursive);
    leases_.Remove(normalized);
    std::lock_guard<std::mutex> service(service_mu_);
    for (const BlockInfo& info : removed) {
      const BlockRecord* record = blocks_.Find(info.id);
      if (record == nullptr) continue;
      for (MediumId medium : record->locations) {
        WorkerCommand cmd;
        cmd.kind = WorkerCommand::Kind::kDeleteReplica;
        cmd.block = info.id;
        cmd.target_medium = medium;
        // Free the master-side space accounting right away; the worker's
        // next heartbeat will confirm.
        (void)state_.AdjustMediumRemaining(medium, info.length);
        QueueCommand(medium, std::move(cmd));
      }
      OCTO_CHECK_OK(blocks_.RemoveBlock(info.id));
    }
  }
  OCTO_RETURN_IF_ERROR(CommitJournal());
  NotifyDelete(normalized);
  return static_cast<int>(removed.size());
}

Result<int> Master::ExpungeTrash(const UserContext& ctx) {
  std::string trash_root = "/.Trash/" + ctx.user;
  {
    auto oplock =
        nslocks_.Lock(trash_root, NamespaceLockManager::OpMode::kRead);
    if (!tree_->Exists(trash_root)) return 0;
  }
  return Delete(trash_root, /*recursive=*/true, ctx, /*skip_trash=*/true);
}

Status Master::SetQuota(const std::string& path, int slot, int64_t bytes) {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    auto oplock = nslocks_.LockStructural();
    OCTO_RETURN_IF_ERROR(tree_->SetQuota(normalized, slot, bytes));
    log_->LogSetQuota(normalized, slot, bytes);
  }
  return CommitJournal();
}

Result<QuotaUsage> Master::GetQuotaUsage(const std::string& path) const {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  auto oplock = nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kRead);
  return tree_->GetQuotaUsage(normalized);
}

Status Master::SetOwner(const std::string& path, const std::string& owner,
                        const std::string& group, const UserContext& ctx) {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    // Structural: ownership feeds the traversal permission checks of every
    // path below this one.
    auto oplock = nslocks_.LockStructural();
    OCTO_RETURN_IF_ERROR(tree_->SetOwner(normalized, owner, group, ctx));
    log_->LogSetOwner(normalized, owner, group);
  }
  return CommitJournal();
}

Status Master::SetMode(const std::string& path, uint16_t mode,
                       const UserContext& ctx) {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    auto oplock = nslocks_.LockStructural();
    OCTO_RETURN_IF_ERROR(tree_->SetMode(normalized, mode, ctx));
    log_->LogSetMode(normalized, mode);
  }
  return CommitJournal();
}

// ---------------------------------------------------------------------------
// Write path

Status Master::Create(const std::string& path, const ReplicationVector& rv,
                      int64_t block_size, bool overwrite,
                      const UserContext& ctx,
                      const std::string& lease_holder) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("create"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  // First attempt assumes the parent chain exists (the common case; only
  // parent + file lock exclusive); when the tree reports missing
  // ancestors, retry under the structural lock creating them.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool structural = attempt == 1;
    auto oplock = structural
                      ? nslocks_.LockStructural()
                      : nslocks_.Lock(normalized,
                                      NamespaceLockManager::OpMode::kMutate);
    // Another writer's live lease blocks re-creation even with overwrite
    // (HDFS's AlreadyBeingCreatedException).
    auto holder = leases_.Holder(normalized);
    if (holder.ok() && *holder != lease_holder) {
      return Status::AlreadyExists(normalized + " is being written by " +
                                   *holder);
    }
    std::vector<BlockInfo> replaced;
    Status st = tree_->CreateFile(normalized, rv, block_size, overwrite, ctx,
                                  &replaced,
                                  structural ? AncestorPolicy::kCreate
                                             : AncestorPolicy::kRequireExisting);
    if (!structural && st.IsUnavailable()) continue;
    OCTO_RETURN_IF_ERROR(st);
    log_->LogCreate(normalized, rv, block_size, overwrite, lease_holder);
    {
      std::lock_guard<std::mutex> service(service_mu_);
      for (const BlockInfo& info : replaced) {
        const BlockRecord* record = blocks_.Find(info.id);
        if (record == nullptr) continue;
        for (MediumId medium : record->locations) {
          WorkerCommand cmd;
          cmd.kind = WorkerCommand::Kind::kDeleteReplica;
          cmd.block = info.id;
          cmd.target_medium = medium;
          (void)state_.AdjustMediumRemaining(medium, info.length);
          QueueCommand(medium, std::move(cmd));
        }
        OCTO_CHECK_OK(blocks_.RemoveBlock(info.id));
      }
    }
    leases_.Remove(normalized);
    OCTO_RETURN_IF_ERROR(leases_.Acquire(normalized, lease_holder));
    oplock.Release();
    OCTO_RETURN_IF_ERROR(CommitJournal());
    // An overwriting create destroyed whatever inode held this path: any
    // identity-keyed soft state for it (heat, managed replicas) is stale.
    if (overwrite) NotifyDelete(normalized);
    return Status::OK();
  }
  return Status::Internal("create of " + normalized + " failed to escalate");
}

Status Master::Append(const std::string& path, const UserContext& ctx,
                      const std::string& lease_holder) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("append"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    auto oplock =
        nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kMutate);
    auto holder = leases_.Holder(normalized);
    if (holder.ok() && *holder != lease_holder) {
      return Status::AlreadyExists(normalized + " is being written by " +
                                   *holder);
    }
    OCTO_RETURN_IF_ERROR(tree_->ReopenForAppend(normalized, ctx));
    log_->LogAppend(normalized, lease_holder);
    leases_.Remove(normalized);
    OCTO_RETURN_IF_ERROR(leases_.Acquire(normalized, lease_holder));
    if (access_stats_enabled()) {
      auto status = tree_->GetFileStatus(normalized, kSuperuser);
      if (status.ok()) {
        RecordFileAccess(status->file_id, normalized, /*accesses=*/1,
                         /*bytes=*/0);
      }
    }
  }
  return CommitJournal();
}

PlacedReplica Master::MakePlacedReplica(MediumId medium) const {
  PlacedReplica pr;
  pr.medium = medium;
  const MediumInfo* m = state_.FindMedium(medium);
  if (m != nullptr) {
    pr.worker = m->worker;
    pr.tier = m->tier;
    pr.location = m->location;
  }
  return pr;
}

Result<LocatedBlock> Master::AddBlock(const std::string& path,
                                      const std::string& lease_holder,
                                      const NetworkLocation& client) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("addBlock"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  LocatedBlock located;
  {
    // Block allocation reads the file (length, rep vector) but mutates
    // only service state, so a shared namespace lock suffices.
    auto oplock =
        nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kRead);
    OCTO_ASSIGN_OR_RETURN(std::string holder, leases_.Holder(normalized));
    if (holder != lease_holder) {
      return Status::PermissionDenied("lease on " + normalized + " held by " +
                                      holder);
    }
    OCTO_RETURN_IF_ERROR(leases_.Renew(normalized, lease_holder));
    OCTO_ASSIGN_OR_RETURN(FileStatus status,
                          tree_->GetFileStatus(normalized, kSuperuser));
    if (!status.under_construction) {
      return Status::FailedPrecondition(normalized +
                                        " is not under construction");
    }
    PlacementRequest request;
    request.client = client;
    request.rep_vector = status.rep_vector;
    request.block_size = status.block_size;
    std::lock_guard<std::mutex> service(service_mu_);
    OCTO_ASSIGN_OR_RETURN(std::vector<MediumId> media,
                          placement_->PlaceReplicas(state_, request, &rng_));
    BlockId id = blocks_.NextBlockId();
    // Every block is born under a fresh generation stamp; pipeline and
    // lease recovery bump it to fence off writers that missed the recovery.
    uint64_t genstamp = NextGenstamp();
    pending_blocks_[id] = PendingBlock{normalized, media, genstamp};
    located.block = BlockInfo{id, 0, genstamp};
    located.offset = status.length;
    located.locations.reserve(media.size());
    for (MediumId m : media) located.locations.push_back(MakePlacedReplica(m));
  }
  OCTO_RETURN_IF_ERROR(CommitJournal());  // the GENSTAMP record
  return located;
}

Status Master::AbandonBlock(const std::string& path,
                            const std::string& lease_holder, BlockId block) {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  OCTO_ASSIGN_OR_RETURN(std::string holder, leases_.Holder(normalized));
  if (holder != lease_holder) {
    return Status::PermissionDenied("lease on " + normalized + " held by " +
                                    holder);
  }
  std::lock_guard<std::mutex> service(service_mu_);
  pending_blocks_.erase(block);
  return Status::OK();
}

Status Master::CommitBlock(const std::string& path,
                           const std::string& lease_holder, BlockId block,
                           int64_t length,
                           const std::vector<MediumId>& succeeded,
                           uint64_t genstamp) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("commitBlock"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    auto oplock =
        nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kMutate);
    OCTO_ASSIGN_OR_RETURN(std::string holder, leases_.Holder(normalized));
    if (holder != lease_holder) {
      return Status::PermissionDenied("lease on " + normalized + " held by " +
                                      holder);
    }
    std::lock_guard<std::mutex> service(service_mu_);
    auto pending = pending_blocks_.find(block);
    if (pending == pending_blocks_.end()) {
      return Status::NotFound("block " + std::to_string(block) +
                              " was not allocated");
    }
    if (pending->second.file != normalized) {
      return Status::InvalidArgument("block " + std::to_string(block) +
                                     " belongs to " + pending->second.file);
    }
    if (genstamp != 0 && genstamp != pending->second.genstamp) {
      // The block was recovered past this writer (its lease expired, or a
      // concurrent recovery restamped the replicas): its view of the bytes
      // no longer matches what lives on the workers.
      return Status::FailedPrecondition(
          "commit of block " + std::to_string(block) + " under stamp " +
          std::to_string(genstamp) + " fenced off (current " +
          std::to_string(pending->second.genstamp) + ")");
    }
    if (succeeded.empty()) {
      return Status::IoError("no replica of block " + std::to_string(block) +
                             " was written");
    }
    OCTO_ASSIGN_OR_RETURN(FileStatus status,
                          tree_->GetFileStatus(normalized, kSuperuser));
    BlockInfo info{block, length, pending->second.genstamp};
    BlockRecord record;
    record.id = block;
    record.file = normalized;
    record.file_id = status.file_id;
    record.length = length;
    record.genstamp = info.genstamp;
    record.expected = status.rep_vector;
    record.locations = succeeded;
    OCTO_RETURN_IF_ERROR(tree_->AddBlock(normalized, info));
    log_->LogAddBlock(normalized, info);
    OCTO_RETURN_IF_ERROR(blocks_.AddBlock(std::move(record)));
    for (MediumId medium : succeeded) {
      (void)state_.AdjustMediumRemaining(medium, -length);
    }
    pending_blocks_.erase(pending);
  }
  return CommitJournal();
}

Result<PipelineRecoveryResult> Master::RecoverPipeline(
    const std::string& path, const std::string& lease_holder, BlockId block,
    const std::vector<MediumId>& survivors, const NetworkLocation& client) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("recoverPipeline"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  PipelineRecoveryResult result;
  {
    auto oplock =
        nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kRead);
    OCTO_ASSIGN_OR_RETURN(std::string holder, leases_.Holder(normalized));
    if (holder != lease_holder) {
      return Status::PermissionDenied("lease on " + normalized + " held by " +
                                      holder);
    }
    OCTO_RETURN_IF_ERROR(leases_.Renew(normalized, lease_holder));
    std::lock_guard<std::mutex> service(service_mu_);
    auto pending = pending_blocks_.find(block);
    if (pending == pending_blocks_.end()) {
      return Status::NotFound("block " + std::to_string(block) +
                              " was not allocated");
    }
    if (pending->second.file != normalized) {
      return Status::InvalidArgument("block " + std::to_string(block) +
                                     " belongs to " + pending->second.file);
    }
    if (survivors.empty()) {
      return Status::InvalidArgument(
          "pipeline recovery of block " + std::to_string(block) +
          " with no survivors; abandon the block instead");
    }
    result.genstamp = NextGenstamp();
    pending->second.genstamp = result.genstamp;
    pending->second.targets = survivors;
    // Try to restore the pipeline's width with a replacement medium; the
    // block still completes (under-replicated) when placement cannot.
    PlacementRequest request;
    request.client = client;
    request.rep_vector.Set(kUnspecifiedTier, 1);
    auto status = tree_->GetFileStatus(normalized, kSuperuser);
    request.block_size = status.ok() ? status->block_size : 0;
    request.existing = survivors;
    auto placed = placement_->PlaceReplicas(state_, request, &rng_);
    if (placed.ok() && !placed->empty()) {
      MediumId target = placed->front();
      pending->second.targets.push_back(target);
      result.has_replacement = true;
      result.replacement = MakePlacedReplica(target);
    }
  }
  OCTO_RETURN_IF_ERROR(CommitJournal());  // the GENSTAMP record
  return result;
}

Status Master::CommitBlockSynchronization(
    BlockId block, uint64_t genstamp, int64_t length,
    const std::vector<MediumId>& good_media) {
  Status st;
  {
    // The file the block belongs to is only known once the pending entry
    // is found under the service lock — too late to take a per-path lock
    // in order. Recovery callbacks are rare; take the structural lock.
    auto oplock = nslocks_.LockStructural();
    std::lock_guard<std::mutex> service(service_mu_);
    st = CommitBlockSynchronizationLocked(block, genstamp, length, good_media);
  }
  Status committed = CommitJournal();
  return st.ok() ? committed : st;
}

Status Master::CommitBlockSynchronizationLocked(
    BlockId block, uint64_t genstamp, int64_t length,
    const std::vector<MediumId>& good_media) {
  auto pending = pending_blocks_.find(block);
  if (pending == pending_blocks_.end()) {
    return Status::NotFound("block " + std::to_string(block) +
                            " is not awaiting recovery");
  }
  if (genstamp != pending->second.genstamp) {
    // A newer recovery round superseded the one this callback belongs to.
    return Status::FailedPrecondition(
        "recovery of block " + std::to_string(block) + " under stamp " +
        std::to_string(genstamp) + " superseded (current " +
        std::to_string(pending->second.genstamp) + ")");
  }
  const std::string path = pending->second.file;
  auto status = tree_->GetFileStatus(path, kSuperuser);
  if (!status.ok()) {
    // The file vanished (deleted) while recovery ran; the leftover
    // replicas are orphans and block reports will scrub them.
    pending_blocks_.erase(block);
    return Status::OK();
  }
  if (!good_media.empty() && length > 0) {
    BlockInfo info{block, length, genstamp};
    BlockRecord record;
    record.id = block;
    record.file = path;
    record.file_id = status->file_id;
    record.length = length;
    record.genstamp = genstamp;
    record.expected = status->rep_vector;
    record.locations = good_media;
    OCTO_RETURN_IF_ERROR(tree_->AddBlock(path, info));
    log_->LogAddBlock(path, info);
    OCTO_RETURN_IF_ERROR(blocks_.AddBlock(std::move(record)));
    for (MediumId medium : good_media) {
      (void)state_.AdjustMediumRemaining(medium, -length);
    }
  }
  // With no good replica (or zero reconciled bytes) the tail block is
  // dropped: the file closes at its last committed length, and the empty
  // leftover replicas are scrubbed as orphans by later block reports.
  pending_blocks_.erase(block);
  OCTO_RETURN_IF_ERROR(tree_->CompleteFile(path));
  log_->LogComplete(path);
  leases_.Remove(path);
  return Status::OK();
}

void Master::StartLeaseRecovery(const std::string& path) {
  // Paths come from the lease table, which the Master keys by normalized
  // path. Recovery mutates the file (force-complete) and service state.
  auto oplock = nslocks_.Lock(path, NamespaceLockManager::OpMode::kMutate);
  std::lock_guard<std::mutex> service(service_mu_);
  // Locate the file's under-construction tail block (writers allocate one
  // block at a time, so there is at most one).
  BlockId block = kInvalidBlock;
  PendingBlock* pending = nullptr;
  for (auto& [id, pb] : pending_blocks_) {
    if (pb.file == path) {
      block = id;
      pending = &pb;
      break;
    }
  }
  if (pending == nullptr) {
    // No tail block in flight: the committed prefix is all there is.
    Status st = tree_->CompleteFile(path);
    if (st.ok()) log_->LogComplete(path);
    return;
  }
  std::vector<MediumId> live;
  for (MediumId m : pending->targets) {
    if (state_.MediumLive(m)) live.push_back(m);
  }
  if (live.empty()) {
    // Every replica of the tail is gone; nothing to reconcile.
    pending_blocks_.erase(block);
    Status st = tree_->CompleteFile(path);
    if (st.ok()) log_->LogComplete(path);
    return;
  }
  // Fence the (possibly still running) writer and any stale recovery
  // round, then dispatch a recovery primary. The file completes when the
  // primary reports back via CommitBlockSynchronization.
  uint64_t genstamp = NextGenstamp();
  pending->genstamp = genstamp;
  pending->targets = live;
  for (auto& [worker, commands] : command_queues_) {
    commands.erase(
        std::remove_if(commands.begin(), commands.end(),
                       [&](const QueuedCommand& queued) {
                         return queued.command.kind ==
                                    WorkerCommand::Kind::kRecoverBlock &&
                                queued.command.block == block;
                       }),
        commands.end());
  }
  WorkerCommand cmd;
  cmd.kind = WorkerCommand::Kind::kRecoverBlock;
  cmd.block = block;
  cmd.target_medium = live.front();
  cmd.sources = live;
  cmd.genstamp = genstamp;
  QueueCommand(live.front(), std::move(cmd));
  // Hold the lease under a synthetic recovery holder: if the primary
  // crashes before reporting back, this lease expires too and recovery
  // restarts with the then-live survivors and a fresh stamp.
  OCTO_CHECK_OK(leases_.Acquire(path, "block-recovery"));
}

void Master::HandleFailedMedium(MediumId medium) {
  const MediumInfo* m = state_.FindMedium(medium);
  if (m == nullptr || m->failed) return;  // unknown or already handled
  OCTO_LOG(Warn) << "medium " << medium << " on worker " << m->worker
                 << " reported failed";
  OCTO_CHECK_OK(state_.SetMediumFailed(medium, true));
  // Commands targeting the dead device will never execute; copies to it
  // release their in-flight bookkeeping (like a dead worker's queue).
  auto queue = command_queues_.find(m->worker);
  if (queue != command_queues_.end()) {
    std::vector<QueuedCommand> dropped;
    auto& commands = queue->second;
    for (auto it = commands.begin(); it != commands.end();) {
      if (it->command.target_medium == medium) {
        dropped.push_back(*it);
        it = commands.erase(it);
      } else {
        ++it;
      }
    }
    if (commands.empty()) command_queues_.erase(queue);
    for (const QueuedCommand& queued : dropped) {
      if (queued.command.kind == WorkerCommand::Kind::kCopyReplica) {
        AbortInflightCopy(queued.command.block, queued.command.target_medium,
                          RepairAbort::kTargetLost);
      }
    }
  }
  // Already-delivered copies to the medium can never confirm either.
  std::vector<BlockId> inflight;
  for (const auto& [key, when] : inflight_copies_) {
    if (key.second == medium) inflight.push_back(key.first);
  }
  for (BlockId b : inflight) {
    AbortInflightCopy(b, medium, RepairAbort::kTargetLost);
  }
  if (in_safe_mode()) return;  // replicas were never adopted; nothing to drop
  // Drop its replicas — without queueing invalidations, the device being
  // unable to execute them — and repair from the surviving copies.
  std::vector<BlockId> blocks = blocks_.BlocksOnMedium(medium);
  for (BlockId b : blocks) {
    OCTO_CHECK_OK(blocks_.RemoveReplica(b, medium));
  }
  for (BlockId b : blocks) {
    const BlockRecord* record = blocks_.Find(b);
    if (record != nullptr) ReconcileBlock(*record);
  }
}

Status Master::CompleteFile(const std::string& path,
                            const std::string& lease_holder) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("completeFile"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    auto oplock =
        nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kMutate);
    OCTO_ASSIGN_OR_RETURN(std::string holder, leases_.Holder(normalized));
    if (holder != lease_holder) {
      return Status::PermissionDenied("lease on " + normalized + " held by " +
                                      holder);
    }
    OCTO_RETURN_IF_ERROR(tree_->CompleteFile(normalized));
    log_->LogComplete(normalized);
    OCTO_RETURN_IF_ERROR(leases_.Release(normalized, lease_holder));
  }
  return CommitJournal();
}

Status Master::RenewLease(const std::string& path,
                          const std::string& lease_holder) {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  return leases_.Renew(normalized, lease_holder);
}

// ---------------------------------------------------------------------------
// Read path

Result<std::vector<LocatedBlock>> Master::GetBlockLocations(
    const std::string& path, const NetworkLocation& client) {
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  auto oplock = nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kRead);
  OCTO_ASSIGN_OR_RETURN(std::vector<BlockInfo> blocks,
                        tree_->GetBlocks(normalized));
  std::vector<LocatedBlock> out;
  out.reserve(blocks.size());
  // Empty files never touch service state: opens of fresh/zero-length
  // files stay on the contention-free read path.
  if (blocks.empty()) return out;
  int64_t offset = 0;
  // Replica ordering consumes the shared rng and reads cluster state.
  std::lock_guard<std::mutex> service(service_mu_);
  uint64_t opened_file_id = 0;
  for (const BlockInfo& info : blocks) {
    LocatedBlock located;
    located.block = info;
    located.offset = offset;
    offset += info.length;
    const BlockRecord* record = blocks_.Find(info.id);
    if (record != nullptr) {
      if (opened_file_id == 0) opened_file_id = record->file_id;
      std::vector<MediumId> ordered =
          retrieval_->OrderReplicas(state_, client, record->locations, &rng_);
      located.locations.reserve(ordered.size());
      for (MediumId m : ordered) {
        located.locations.push_back(MakePlacedReplica(m));
      }
    }
    out.push_back(std::move(located));
  }
  // A block-location fetch is the open of the client read path: count it
  // once toward the file's heat (byte volume arrives separately via the
  // serving workers' heartbeat read counters).
  RecordFileAccess(opened_file_id, normalized, /*accesses=*/1, /*bytes=*/0);
  return out;
}

std::vector<MediumId> Master::OrderReplicasFor(
    const NetworkLocation& client, const std::vector<MediumId>& media) {
  std::lock_guard<std::mutex> service(service_mu_);
  return retrieval_->OrderReplicas(state_, client, media, &rng_);
}

Status Master::ReportBadBlock(BlockId block, MediumId medium) {
  std::lock_guard<std::mutex> service(service_mu_);
  return ReportBadBlockLocked(block, medium);
}

Status Master::ReportBadBlockLocked(BlockId block, MediumId medium) {
  // In safe mode the block map is still being reconstructed; dropping
  // locations now could make reconstruction count a reported block as
  // lost. Ignore — the scrubber/reader will re-report after exit.
  if (in_safe_mode()) return Status::OK();
  OCTO_RETURN_IF_ERROR(blocks_.RemoveReplica(block, medium));
  const BlockRecord* record = blocks_.Find(block);
  if (record != nullptr) {
    (void)state_.AdjustMediumRemaining(medium, record->length);
  }
  WorkerCommand cmd;
  cmd.kind = WorkerCommand::Kind::kDeleteReplica;
  cmd.block = block;
  cmd.target_medium = medium;
  QueueCommand(medium, std::move(cmd));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Replication vector management

Status Master::SetReplication(const std::string& path,
                              const ReplicationVector& rv,
                              const UserContext& ctx) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("setReplication"));
  OCTO_ASSIGN_OR_RETURN(std::string normalized, NormalizePath(path));
  {
    auto oplock =
        nslocks_.Lock(normalized, NamespaceLockManager::OpMode::kMutate);
    OCTO_RETURN_IF_ERROR(tree_->SetReplicationVector(normalized, rv, ctx));
    log_->LogSetReplication(normalized, rv);
    OCTO_ASSIGN_OR_RETURN(std::vector<BlockInfo> blocks,
                          tree_->GetBlocks(normalized));
    // Reconcile each block right away; the generated copy/delete commands
    // execute asynchronously on the workers (paper §5: "the Client will
    // not wait until the copying or removal of blocks is completed").
    std::lock_guard<std::mutex> service(service_mu_);
    for (const BlockInfo& info : blocks) {
      OCTO_RETURN_IF_ERROR(blocks_.SetExpected(info.id, rv));
      const BlockRecord* record = blocks_.Find(info.id);
      if (record != nullptr) ReconcileBlock(*record);
    }
  }
  return CommitJournal();
}

Status Master::RequestMigration(const std::string& path,
                                const ReplicationVector& rv) {
  // Same journaled vector edit as SetReplication under the superuser:
  // migration moves bytes between tiers without changing the total, so
  // classification lands the copies in the kMisTiered bucket and every
  // dispatch passes through the repair scheduler's budgets. There is no
  // unbudgeted path for background byte movement.
  return SetReplication(path, rv, UserContext{"root", {}});
}

Result<std::vector<StorageTierReport>> Master::GetStorageTierReports() const {
  std::lock_guard<std::mutex> service(service_mu_);
  return state_.TierReports();
}

// ---------------------------------------------------------------------------
// Replication monitor

void Master::QueueCommand(MediumId target_medium, WorkerCommand command) {
  const MediumInfo* m = state_.FindMedium(target_medium);
  if (m == nullptr) return;
  command.id = next_command_id_++;
  command.epoch = epoch();
  command_queues_[m->worker].push_back(QueuedCommand{std::move(command)});
}

std::vector<MediumId> Master::LiveLocations(const BlockRecord& record) const {
  std::vector<MediumId> live;
  for (MediumId m : record.locations) {
    if (state_.MediumLive(m)) live.push_back(m);
  }
  return live;
}

void Master::PruneDeadReplicas(BlockRecord* record) {
  // Collect first: RemoveReplica mutates record->locations, so the dead
  // list must be snapshotted before any removal.
  std::vector<MediumId> dead;
  for (MediumId m : record->locations) {
    if (!state_.MediumLive(m)) dead.push_back(m);
  }
  for (MediumId m : dead) {
    OCTO_CHECK_OK(blocks_.RemoveReplica(record->id, m));
  }
}

void Master::ExpireInflight() {
  int64_t now = clock_->NowMicros();
  for (const auto& [block, target] : repair_.ExpiredCopies(now)) {
    AbortInflightCopy(block, target, RepairAbort::kTimeout);
  }
}

void Master::AbortInflightCopy(BlockId block, MediumId target,
                               RepairAbort reason) {
  repair_.NoteAborted(block, target, reason, clock_->NowMicros());
  // A move whose copy never confirmed: release the target reservation
  // and forget the move (the source replica was never touched).
  auto move = pending_moves_.find({block, target});
  if (move != pending_moves_.end()) {
    const BlockRecord* record = blocks_.Find(block);
    if (record != nullptr) {
      (void)state_.AdjustMediumRemaining(target, record->length);
    }
    pending_moves_.erase(move);
  }
  inflight_copies_.erase({block, target});
  // Scrub the matching queued command: once the monitor reschedules the
  // repair, a late delivery of the old command must not execute a second,
  // untracked copy.
  const MediumInfo* m = state_.FindMedium(target);
  if (m == nullptr) return;
  auto queue = command_queues_.find(m->worker);
  if (queue == command_queues_.end()) return;
  auto& commands = queue->second;
  commands.erase(
      std::remove_if(commands.begin(), commands.end(),
                     [&](const QueuedCommand& queued) {
                       return queued.command.kind ==
                                  WorkerCommand::Kind::kCopyReplica &&
                              queued.command.block == block &&
                              queued.command.target_medium == target;
                     }),
      commands.end());
  if (commands.empty()) command_queues_.erase(queue);
}

void Master::ClassifyBlockLocked(const BlockRecord& record) {
  std::vector<MediumId> live = LiveLocations(record);
  const ReplicationVector& rv = record.expected;

  // Per-tier replica counts. Replicas on draining workers are tracked
  // separately: still readable (and the best copy sources) but no longer
  // counting toward the replication factor — their deficits drive
  // decommission-priority copies. Scheduled-but-unconfirmed copies count
  // so repeated rounds do not double-schedule.
  std::array<int, 8> actual{};
  std::array<int, 8> draining{};
  std::vector<MediumId> draining_media;
  for (MediumId m : live) {
    const MediumInfo* info = state_.FindMedium(m);
    if (info == nullptr) continue;
    if (state_.WorkerDraining(info->worker)) {
      draining[info->tier & 7]++;
      draining_media.push_back(m);
    } else {
      actual[info->tier & 7]++;
    }
  }
  bool copies_in_flight = false;
  int inflight_count = 0;
  for (const auto& [key, when] : inflight_copies_) {
    if (key.first != record.id) continue;
    const MediumInfo* info = state_.FindMedium(key.second);
    if (info == nullptr || !state_.MediumLive(key.second)) continue;
    copies_in_flight = true;
    ++inflight_count;
    actual[info->tier & 7]++;
  }

  if (live.empty()) {
    // Nothing to copy from; if every replica is gone the block is lost
    // (lineage/erasure recovery is out of scope, as in stock HDFS).
    repair_.ClearBackoff(record.id);
    return;
  }

  int total_actual = 0;
  int total_expected = rv.unspecified();
  for (TierId t = 0; t < kMaxTiers; ++t) {
    total_actual += actual[t];
    total_expected += rv.Get(t);
  }
  // One live replica anywhere (draining ones included — they still hold
  // the bytes) means data loss is one failure away.
  bool last_replica = static_cast<int>(live.size()) + inflight_count <= 1;

  int copies_needed = 0;
  auto classify_copy = [&](TierId entry_tier, bool drain_covered) {
    RepairWork work;
    work.block = record.id;
    work.tier = entry_tier;
    RepairPriority base;
    if (last_replica) {
      base = RepairPriority::kLastReplica;
    } else if (drain_covered) {
      base = RepairPriority::kDecommission;
    } else if (total_actual >= total_expected) {
      // The count is right, the tiers are wrong: a migration (the
      // tiering engine's vector edits land here).
      base = RepairPriority::kMisTiered;
    } else {
      base = RepairPriority::kUnderReplicated;
    }
    work.priority = repair_.EscalatedPriority(record.id, base);
    repair_.Enqueue(work);
    ++copies_needed;
  };

  // 1. Deficits on explicitly requested tiers.
  for (TierId t = 0; t < kMaxTiers; ++t) {
    int deficit = rv.Get(t) - actual[t];
    int drain_cover = std::min(deficit, draining[t]);
    for (int d = 0; d < deficit; ++d) {
      classify_copy(t, d < drain_cover);
    }
  }
  // 2. Surplus replicas beyond each tier's request count toward U.
  int total_extra = 0;
  int draining_spare = 0;
  for (TierId t = 0; t < kMaxTiers; ++t) {
    total_extra += std::max(0, actual[t] - rv.Get(t));
    draining_spare += std::max(0, draining[t] - std::max(0, rv.Get(t) -
                                                                actual[t]));
  }
  int u_deficit = rv.unspecified() - total_extra;
  int drain_cover_u = std::min(std::max(0, u_deficit), draining_spare);
  for (int d = 0; d < u_deficit; ++d) {
    classify_copy(kUnspecifiedTier, d < drain_cover_u);
  }

  if (copies_needed == 0 && !copies_in_flight) {
    // Healthy (possibly over-replicated): forget any failure history.
    repair_.ClearBackoff(record.id);
  }

  // 3. Over-replication: trim, but never while copies of this block are
  // unconfirmed — including ones classified just above: the replica to
  // be dropped may be the only usable copy source. The trim happens on a
  // later round, once the copies land (HDFS likewise never invalidates a
  // re-replication source).
  if (copies_in_flight || copies_needed > 0) return;
  int excess = -u_deficit;
  for (int i = 0; i < excess; ++i) {
    RepairWork work;
    work.block = record.id;
    work.priority = RepairPriority::kOverReplicated;
    work.is_trim = true;
    repair_.Enqueue(work);
  }
  // 4. Drain trims: every requirement is met by in-service replicas
  // alone, so replicas still sitting on draining workers are now
  // redundant — delete them so the drain can finish.
  for (MediumId m : draining_media) {
    RepairWork work;
    work.block = record.id;
    work.priority = RepairPriority::kDecommission;
    work.is_trim = true;
    work.drain = true;
    work.victim = m;
    repair_.Enqueue(work);
  }
}

int Master::DispatchCopyLocked(const RepairWork& work) {
  const BlockRecord* record = blocks_.Find(work.block);
  if (record == nullptr) return 0;
  int64_t now = clock_->NowMicros();
  if (repair_.InBackoff(work.block, now)) {
    ++repair_.stats().backoff_deferred;
    return 0;
  }
  std::vector<MediumId> live = LiveLocations(*record);
  if (live.empty()) return 0;
  // Exclude from placement: every existing replica, every in-flight
  // target, and every target still cooling down after an expired copy
  // (the expired copy may yet land; re-picking the same target would
  // double-queue). Draining media are excluded by the placement indexes
  // themselves.
  std::vector<MediumId> existing = live;
  for (const auto& [key, when] : inflight_copies_) {
    if (key.first == work.block) existing.push_back(key.second);
  }
  for (MediumId m : repair_.CooldownTargets(work.block, now)) {
    existing.push_back(m);
  }
  PlacementRequest request;
  request.rep_vector.Set(work.tier, 1);
  request.block_size = record->length;
  request.existing = std::move(existing);
  // Scheduled-size accounting (as in HDFS): charge every in-flight
  // repair copy's bytes against its target medium for the duration of
  // this placement decision. Concurrent repairs then spread across
  // targets instead of piling onto the emptiest medium, and a medium
  // cannot be over-committed by copies that have not landed yet.
  std::vector<std::pair<MediumId, int64_t>> charged;
  charged.reserve(repair_.medium_bytes_inflight().size());
  for (const auto& [m, bytes] : repair_.medium_bytes_inflight()) {
    if (state_.AdjustMediumRemaining(m, -bytes).ok()) {
      charged.emplace_back(m, bytes);
    }
  }
  auto placed = placement_->PlaceReplicas(state_, request, &rng_);
  for (const auto& [m, bytes] : charged) {
    (void)state_.AdjustMediumRemaining(m, bytes);
  }
  if (!placed.ok() || placed->empty()) return 0;
  MediumId target = placed->front();
  const MediumInfo* target_info = state_.FindMedium(target);
  if (target_info == nullptr) return 0;
  if (!repair_.CanDispatch(target_info->worker, target, record->length)) {
    // Budget full: drop the item; the next round re-derives and retries
    // it once completions free the budget. Deferral is visible, never a
    // silent loss.
    ++repair_.stats().deferred;
    return 0;
  }
  WorkerCommand cmd;
  cmd.kind = WorkerCommand::Kind::kCopyReplica;
  cmd.block = record->id;
  cmd.target_medium = target;
  cmd.genstamp = record->genstamp;
  cmd.repair_priority = static_cast<int8_t>(work.priority);
  // The receiving worker copies from the most efficient source
  // (paper §5: the new host "will utilize the data retrieval policy").
  cmd.sources =
      retrieval_->OrderReplicas(state_, target_info->location, live, &rng_);
  QueueCommand(target, std::move(cmd));
  inflight_copies_[{record->id, target}] = now;
  repair_.NoteDispatched(record->id, target, target_info->worker,
                         record->length, work.priority, now);
  return 1;
}

int Master::DispatchTrimLocked(const RepairWork& work) {
  const BlockRecord* record = blocks_.Find(work.block);
  if (record == nullptr) return 0;
  MediumId victim = kInvalidMedium;
  if (work.drain) {
    // The victim was chosen at classification time: a redundant replica
    // on a draining worker.
    if (std::find(record->locations.begin(), record->locations.end(),
                  work.victim) == record->locations.end()) {
      return 0;
    }
    victim = work.victim;
  } else {
    // Re-derive the surplus victim from current state: earlier trims of
    // the same block in this round already shrank its location list.
    const ReplicationVector& rv = record->expected;
    std::vector<MediumId> live;
    std::array<int, 8> actual{};
    for (MediumId m : LiveLocations(*record)) {
      const MediumInfo* info = state_.FindMedium(m);
      if (info == nullptr || state_.WorkerDraining(info->worker)) continue;
      live.push_back(m);
      actual[info->tier & 7]++;
    }
    int total_extra = 0;
    for (TierId t = 0; t < kMaxTiers; ++t) {
      total_extra += std::max(0, actual[t] - rv.Get(t));
    }
    if (rv.unspecified() - total_extra >= 0) return 0;  // no longer surplus
    // Drop from the tier with the largest surplus (paper §5: evaluate
    // each removal with Eq. 11, keep the best set).
    TierId victim_tier = kUnspecifiedTier;
    int max_extra = 0;
    for (TierId t = 0; t < kMaxTiers; ++t) {
      int extra = actual[t] - rv.Get(t);
      if (extra > max_extra) {
        max_extra = extra;
        victim_tier = t;
      }
    }
    if (victim_tier == kUnspecifiedTier) return 0;
    auto selected =
        SelectReplicaToRemove(state_, live, victim_tier, record->length);
    if (!selected.ok()) return 0;
    victim = *selected;
  }
  WorkerCommand cmd;
  cmd.kind = WorkerCommand::Kind::kDeleteReplica;
  cmd.block = record->id;
  cmd.target_medium = victim;
  cmd.repair_priority = static_cast<int8_t>(work.priority);
  QueueCommand(victim, std::move(cmd));
  OCTO_CHECK_OK(blocks_.RemoveReplica(record->id, victim));
  (void)state_.AdjustMediumRemaining(victim, record->length);
  if (work.drain) {
    ++repair_.stats().drained_replicas;
  } else {
    ++repair_.stats().trims;
  }
  return 1;
}

int Master::DispatchRepairsLocked() {
  int commands = 0;
  RepairWork work;
  while (repair_.PopNext(&work)) {
    commands += work.is_trim ? DispatchTrimLocked(work)
                             : DispatchCopyLocked(work);
  }
  return commands;
}

int Master::ReconcileBlock(const BlockRecord& record) {
  ClassifyBlockLocked(record);
  return DispatchRepairsLocked();
}

int Master::RunReplicationMonitor() {
  std::lock_guard<std::mutex> service(service_mu_);
  return RunReplicationMonitorLocked();
}

int Master::RunReplicationMonitorLocked() {
  // Re-replication decisions made on a partial block map would copy and
  // delete the wrong things; wait for safe-mode exit.
  if (in_safe_mode()) return 0;
  ExpireInflight();
  // Phase 1: classify every block into the scheduler's priority buckets
  // (transient — re-derived from block-map ground truth each round, so
  // the queue can never go stale).
  repair_.ClearQueue();
  std::vector<BlockId> ids;
  blocks_.ForEach(
      [&ids](const BlockRecord& record) { ids.push_back(record.id); });
  for (BlockId id : ids) {
    // Re-find each round: pruning mutates location lists.
    BlockRecord* record = blocks_.FindMutable(id);
    if (record == nullptr) continue;
    PruneDeadReplicas(record);
    ClassifyBlockLocked(*record);
  }
  // Phase 2: one dispatch pass over all queued work in global priority
  // order — a last-replica block anywhere beats every decommission
  // drain, which beats plain under-replication, and so on — under the
  // per-worker / per-medium budgets.
  int commands = DispatchRepairsLocked();
  AdvanceDrainsLocked();
  return commands;
}

void Master::AdvanceDrainsLocked() {
  for (auto& [id, admin] : admin_states_) {
    if (admin != WorkerAdminState::kDecommissioning) continue;
    bool empty = true;
    for (MediumId m : state_.MediaOnWorker(id)) {
      if (!blocks_.BlocksOnMedium(m).empty()) {
        empty = false;
        break;
      }
    }
    if (empty) {
      admin = WorkerAdminState::kDecommissioned;
      OCTO_LOG(Info) << "worker " << id
                     << " fully drained; decommission complete";
    }
  }
}

Status Master::CommitReplica(BlockId block, MediumId medium) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (inflight_copies_.erase({block, medium}) > 0) {
    repair_.NoteCompleted(block, medium);
  }
  Status st = blocks_.AddReplica(block, medium);
  if (!st.ok() && !st.IsAlreadyExists()) return st;
  const BlockRecord* record = blocks_.Find(block);
  // Replica moves reserved the target's space at scheduling time.
  bool is_move = pending_moves_.count({block, medium}) > 0;
  if (st.ok() && record != nullptr && !is_move) {
    (void)state_.AdjustMediumRemaining(medium, -record->length);
  }
  // Complete a pending replica move: now that the copy is safe, drop the
  // source replica.
  auto move = pending_moves_.find({block, medium});
  if (move != pending_moves_.end()) {
    MediumId source = move->second;
    pending_moves_.erase(move);
    if (blocks_.RemoveReplica(block, source).ok()) {
      if (record != nullptr) {
        (void)state_.AdjustMediumRemaining(source, record->length);
      }
      WorkerCommand cmd;
      cmd.kind = WorkerCommand::Kind::kDeleteReplica;
      cmd.block = block;
      cmd.target_medium = source;
      QueueCommand(source, std::move(cmd));
    }
  } else if (record != nullptr) {
    // Follow-up reconcile: over-replication deletions deferred while this
    // copy was in flight can proceed now that it is confirmed.
    ReconcileBlock(*record);
  }
  return Status::OK();
}

Status Master::ScheduleReplicaMove(BlockId block, MediumId from) {
  OCTO_RETURN_IF_ERROR(CheckNotInSafeMode("replica move"));
  std::lock_guard<std::mutex> service(service_mu_);
  const BlockRecord* record = blocks_.Find(block);
  if (record == nullptr) {
    return Status::NotFound("block " + std::to_string(block));
  }
  if (std::find(record->locations.begin(), record->locations.end(), from) ==
      record->locations.end()) {
    return Status::NotFound("block " + std::to_string(block) +
                            " has no replica on medium " +
                            std::to_string(from));
  }
  const MediumInfo* from_info = state_.FindMedium(from);
  if (from_info == nullptr) {
    return Status::NotFound("medium " + std::to_string(from));
  }
  // One in-flight move per block keeps the bookkeeping simple.
  for (const auto& [key, source] : pending_moves_) {
    if (key.first == block) {
      return Status::AlreadyExists("block " + std::to_string(block) +
                                   " already has a move in flight");
    }
  }
  PlacementRequest request;
  request.rep_vector.Set(from_info->tier, 1);  // stay within the tier
  request.block_size = record->length;
  request.existing = record->locations;
  OCTO_ASSIGN_OR_RETURN(std::vector<MediumId> placed,
                        placement_->PlaceReplicas(state_, request, &rng_));
  if (placed.empty()) {
    return Status::NoSpace("no target medium for moving block " +
                           std::to_string(block));
  }
  MediumId target = placed.front();
  const MediumInfo* target_info = state_.FindMedium(target);
  // Rebalancer moves are the least urgent byte movement there is: they
  // share the repair budgets and yield when repair work has them busy.
  if (target_info != nullptr &&
      !repair_.CanDispatch(target_info->worker, target, record->length)) {
    ++repair_.stats().deferred;
    return Status::Unavailable("repair budget exhausted for worker " +
                               std::to_string(target_info->worker) +
                               "; retry the move later");
  }
  WorkerCommand cmd;
  cmd.kind = WorkerCommand::Kind::kCopyReplica;
  cmd.block = block;
  cmd.target_medium = target;
  cmd.genstamp = record->genstamp;
  cmd.repair_priority = static_cast<int8_t>(RepairPriority::kMisTiered);
  cmd.sources = retrieval_->OrderReplicas(
      state_,
      target_info != nullptr ? target_info->location : NetworkLocation(),
      LiveLocations(*record), &rng_);
  QueueCommand(target, std::move(cmd));
  int64_t now = clock_->NowMicros();
  inflight_copies_[{block, target}] = now;
  if (target_info != nullptr) {
    repair_.NoteDispatched(block, target, target_info->worker, record->length,
                           RepairPriority::kMisTiered, now);
  }
  pending_moves_[{block, target}] = from;
  // Reserve the target's space now so moves scheduled in the same pass
  // spread across targets instead of piling onto one medium.
  (void)state_.AdjustMediumRemaining(target, -record->length);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transfer accounting

void Master::NoteTransferStarted(WorkerId worker, MediumId medium) {
  std::lock_guard<std::mutex> service(service_mu_);
  state_.AddWorkerConnections(worker, +1);
  state_.AddMediumConnections(medium, +1);
}

void Master::NoteTransferEnded(WorkerId worker, MediumId medium) {
  std::lock_guard<std::mutex> service(service_mu_);
  state_.AddWorkerConnections(worker, -1);
  state_.AddMediumConnections(medium, -1);
}

// ---------------------------------------------------------------------------
// Recovery

Status Master::LoadImage(const std::string& image,
                         const std::vector<std::string>& edit_entries,
                         int64_t edits_from) {
  return LoadImageInternal(image, edit_entries, edits_from,
                           FsImage::Mode::kStrict, ReplayMode::kStrict);
}

Status Master::LoadImageInternal(const std::string& image,
                                 const std::vector<std::string>& edit_entries,
                                 int64_t edits_from, FsImage::Mode image_mode,
                                 ReplayMode replay_mode) {
  // Replaces the whole namespace and block map: exclude everything.
  auto oplock = nslocks_.LockStructural();
  std::lock_guard<std::mutex> service(service_mu_);
  auto tree = std::make_unique<NamespaceTree>(clock_);
  tree->EnablePermissions(options_.enable_permissions);
  OCTO_RETURN_IF_ERROR(FsImage::Deserialize(image, tree.get(), image_mode));
  EditReplayInfo replay_info;
  OCTO_RETURN_IF_ERROR(EditLog::Replay(edit_entries, edits_from, tree.get(),
                                       &replay_info, replay_mode));
  if (replay_info.skipped_records > 0 || replay_info.rename_fixups > 0) {
    OCTO_LOG(Info) << "recovery replay absorbed "
                   << replay_info.skipped_records
                   << " already-applied record(s) and "
                   << replay_info.rename_fixups << " rename fixup(s)";
  }
  tree_ = std::move(tree);
  if (replay_info.max_epoch > epoch()) {
    epoch_.store(replay_info.max_epoch, std::memory_order_relaxed);
  }
  if (replay_info.max_genstamp > current_genstamp()) {
    genstamp_.store(replay_info.max_genstamp, std::memory_order_relaxed);
  }
  // Rebuild block records from the namespace; replica locations repopulate
  // from worker block reports. Files still under construction get their
  // write lease re-acquired (journaled holder when available, a synthetic
  // one otherwise — it expires and the file is force-completed, the HDFS
  // lease-recovery endgame).
  blocks_.Reset();
  leases_.Clear();
  Status status = Status::OK();
  tree_->Visit([this, &replay_info, &status](
                   const NamespaceTree::VisitEntry& e) {
    if (e.status.is_dir || !status.ok()) return;
    for (const BlockInfo& info : e.blocks) {
      BlockRecord record;
      record.id = info.id;
      record.file = e.status.path;
      record.file_id = e.status.file_id;
      record.length = info.length;
      record.genstamp = info.genstamp;
      record.expected = e.status.rep_vector;
      // The allocator must clear every stamp in use, even ones whose
      // GENSTAMP record was folded into the checkpoint.
      if (info.genstamp > current_genstamp()) {
        genstamp_.store(info.genstamp, std::memory_order_relaxed);
      }
      Status st = blocks_.AddBlock(std::move(record));
      if (!st.ok()) status = st;
    }
    if (e.status.under_construction) {
      auto holder = replay_info.lease_holders.find(e.status.path);
      std::string name = holder != replay_info.lease_holders.end() &&
                                 !holder->second.empty()
                             ? holder->second
                             : "lease-recovery";
      Status st = leases_.Acquire(e.status.path, name);
      if (!st.ok()) status = st;
    }
  });
  pending_blocks_.clear();
  inflight_copies_.clear();
  pending_moves_.clear();
  command_queues_.clear();
  deferred_orphans_.clear();
  lost_blocks_.clear();
  // The block map the scheduler mirrored is gone; budgets, backoff, and
  // cooldowns with it. Admin states too: operators re-issue drains
  // against the recovered master.
  repair_.Reset();
  admin_states_.clear();
  // Until the surviving workers re-report, every replica location is
  // unknown: hold off on placement and re-replication decisions.
  safe_mode_block_target_.store(blocks_.NumBlocks(),
                                std::memory_order_relaxed);
  safe_mode_.store(safe_mode_block_target_.load(std::memory_order_relaxed) > 0,
                   std::memory_order_relaxed);
  return status;
}

Status Master::CommitJournal() {
  Status st = log_->Commit();
  if (st.ok()) return st;
  if (!journal_failed_.exchange(true, std::memory_order_relaxed)) {
    OCTO_LOG(Error) << "journal commit failed, fail-stopping into safe mode: "
                    << st.ToString();
  }
  // The edit the caller was about to ack is not durable. Refusing all
  // further mutations (and never acking this one) keeps the invariant
  // that every acked edit survives recovery.
  safe_mode_.store(true, std::memory_order_relaxed);
  return st;
}

void Master::RecordRenameForCheckpoint(const std::string& src,
                                       const std::string& dst) {
  if (!checkpoint_active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  checkpoint_renames_.emplace_back(src, dst);
}

Result<int64_t> Master::WriteCheckpoint() {
  if (images_ == nullptr) {
    return Status::FailedPrecondition(
        "checkpointing requires a metadata_dir");
  }
  bool expected = false;
  if (!checkpoint_active_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("a checkpoint is already running");
  }
  // Arms the clean-up on every early return; disarmed before the normal
  // clear (which must happen under the structural lock, see below).
  bool active = true;
  auto clear_active = [&] {
    if (active) checkpoint_active_.store(false, std::memory_order_release);
    active = false;
  };
  // Pre-pay the finalize fsync: RollSegment below always fdatasyncs the
  // closing segment, and after a long steady window that can be tens of
  // MB of dirty page cache — paid under the structural lock, it would be
  // the longest mutation stall of the whole checkpoint. Syncing here
  // (no locks held) shrinks the in-lock sync to the records that arrive
  // in between.
  if (Status st = log_->SyncToDisk(); !st.ok()) {
    clear_active();
    return st;
  }
  int64_t txid = 0;
  {
    // Brief structural section: every mutation journaled before this
    // point sits in segments below `txid`; everything after lands in the
    // new segment AND is either visible to the walk below or re-applied
    // by the recovery tail replay.
    auto oplock = nslocks_.LockStructural();
    {
      std::lock_guard<std::mutex> lock(checkpoint_mu_);
      checkpoint_renames_.clear();
    }
    auto rolled = log_->RollSegment();
    if (!rolled.ok()) {
      clear_active();
      return rolled.status();
    }
    txid = *rolled;
  }
  // Chunked walk: one directory at a time under its own shared per-path
  // lock, which pins the directory's stripe and so its child map — all
  // other namespace operations proceed concurrently. A directory deleted
  // (or renamed away) between being queued and visited just drops out;
  // the journal tail carries whatever happened to it.
  std::string image = FsImage::Header();
  const auto emit = [&image](const NamespaceTree::VisitEntry& entry) {
    FsImage::AppendEntry(&image, entry);
  };
  std::vector<std::string> pending_dirs;
  pending_dirs.push_back("/");
  constexpr size_t kImageHeadroom = size_t{8} << 20;
  while (!pending_dirs.empty()) {
    std::string dir = std::move(pending_dirs.back());
    pending_dirs.pop_back();
    // Grow the image buffer out here: a doubling realloc of a
    // hundred-MB image inside SnapshotDirectory would hold the
    // directory's stripe for the whole copy and surface as a mutation
    // stall on everything sharing it.
    if (image.capacity() - image.size() < kImageHeadroom) {
      image.reserve(
          std::max(image.capacity() * 2, image.size() + 2 * kImageHeadroom));
    }
    auto oplock = nslocks_.Lock(dir, NamespaceLockManager::OpMode::kRead);
    Status st = tree_->SnapshotDirectory(dir, emit, &pending_dirs);
    if (!st.ok() && !st.IsNotFound()) {
      clear_active();
      return st;
    }
  }
  {
    // Post-walk patch: a subtree renamed while the walk ran may have
    // moved from a not-yet-visited source into an already-visited
    // destination, in which case the walk missed it entirely — and the
    // tail's RENAME record alone cannot recreate it. Re-serialize every
    // such destination subtree; the fuzzy deserializer treats these
    // later lines as authoritative. Renames committing after this
    // section are ordinary post-checkpoint edits handled by tail replay.
    auto oplock = nslocks_.LockStructural();
    std::vector<std::pair<std::string, std::string>> renames;
    {
      std::lock_guard<std::mutex> lock(checkpoint_mu_);
      renames.swap(checkpoint_renames_);
    }
    for (const auto& [src, dst] : renames) {
      Status st = tree_->VisitSubtree(dst, emit);
      if (!st.ok() && !st.IsNotFound()) {
        clear_active();
        return st;
      }
    }
    clear_active();
  }
  OCTO_RETURN_IF_ERROR(images_->WriteImage(txid, image));
  // Read-back verification before this image is allowed to gate a journal
  // purge: an image corrupted on write (kImageCorrupt) otherwise becomes
  // a retained fallback that cannot actually be loaded — and if it is the
  // *oldest* retained image, the purge below destroys the only journal
  // prefix a from-scratch replay would need. Recovery skips the damaged
  // file either way; the purge must not trust it.
  if (auto verified = images_->ReadImage(txid); !verified.ok()) {
    return verified.status();
  }
  log_->MarkCheckpointed(txid);
  // Segments below the *oldest* retained image stay unreachable by every
  // fallback chain and can go.
  int64_t floor = images_->OldestRetainedTxid();
  if (floor > 0) {
    OCTO_RETURN_IF_ERROR(log_->PurgeSegmentsBefore(floor));
  }
  return txid;
}

Status Master::RecoverFromLocalStorage() {
  if (images_ == nullptr) {
    return Status::FailedPrecondition("recovery requires a metadata_dir");
  }
  Status last_error = Status::OK();
  for (int64_t txid : images_->ListImages()) {  // newest first
    auto image = images_->ReadImage(txid);
    if (!image.ok()) {
      OCTO_LOG(Warn) << "checkpoint image at txid " << txid
                     << " failed verification ("
                     << image.status().ToString()
                     << "); falling back to an older image";
      last_error = image.status();
      continue;
    }
    std::vector<std::string> tail;
    int64_t start = log_->ReadEntries(txid, &tail);
    if (start > txid) {
      // The journal records this image needs were purged; only an older
      // (already tried, newer) image could have covered them.
      last_error = Status::Corruption(
          "journal starts at txid " + std::to_string(start) +
          ", image at " + std::to_string(txid) + " cannot be completed");
      continue;
    }
    Status st = LoadImageInternal(*image, tail, 0, FsImage::Mode::kFuzzy,
                                  ReplayMode::kRecovery);
    if (!st.ok()) {
      last_error = st;
      continue;
    }
    log_->MarkCheckpointed(txid);
    return Status::OK();
  }
  if (log_->base_txid() == 0) {
    // No usable image. With the full journal on disk the namespace is
    // still reconstructible from scratch.
    std::vector<std::string> all;
    log_->ReadEntries(0, &all);
    Status st = LoadImageInternal(FsImage::Header(), all, 0,
                                  FsImage::Mode::kFuzzy,
                                  ReplayMode::kRecovery);
    if (st.ok()) return st;
    last_error = st;
  }
  return last_error.ok()
             ? Status::Corruption("no usable checkpoint image or journal")
             : last_error;
}

void Master::InstallDurabilityFaults(fault::FaultRegistry* registry) {
  if (registry == nullptr) return;
  // The registry is not thread-safe; journal writes (any mutator thread)
  // and image writes (the checkpoint thread) may consult concurrently,
  // so both hooks share one mutex.
  auto mu = std::make_shared<std::mutex>();
  log_->SetWriteFaultHook([registry, mu]() {
    std::lock_guard<std::mutex> lock(*mu);
    fault::FaultRegistry::JournalFault f = registry->CheckJournalWrite();
    return EditLog::WriteFault{f.status, f.torn_bytes};
  });
  if (images_ != nullptr) {
    images_->SetWriteFaultHook([registry, mu]() {
      std::lock_guard<std::mutex> lock(*mu);
      fault::FaultRegistry::ImageFault f = registry->CheckImageWrite();
      return ImageStore::WriteFault{f.corrupt, f.crash_before_rename};
    });
  }
}

void Master::NoteEpochFloor(uint64_t floor) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (floor > epoch()) epoch_.store(floor, std::memory_order_relaxed);
}

void Master::BumpEpoch() {
  {
    std::lock_guard<std::mutex> service(service_mu_);
    uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    log_->LogEpoch(epoch);
  }
  // A takeover with a failing journal still proceeds (the epoch is
  // already effective in memory and stamped on commands); the master is
  // fail-stopped for namespace mutations by CommitJournal's latch.
  Status st = CommitJournal();
  if (!st.ok()) {
    OCTO_LOG(Warn) << "epoch bump not durable: " << st.ToString();
  }
}

void Master::NoteGenstampFloor(uint64_t floor) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (floor > current_genstamp()) {
    genstamp_.store(floor, std::memory_order_relaxed);
  }
}

uint64_t Master::NextGenstamp() {
  uint64_t genstamp = genstamp_.fetch_add(1, std::memory_order_relaxed) + 1;
  log_->LogGenstamp(genstamp);
  return genstamp;
}

Status Master::CheckNotInSafeMode(const char* op) const {
  if (journal_failed()) {
    return Status::Unavailable(std::string(op) +
                               " rejected: journal write failed (" +
                               log_->last_io_error().ToString() +
                               "); master is fail-stopped");
  }
  if (!in_safe_mode()) return Status::OK();
  return Status::Unavailable(
      std::string(op) + " rejected: master in safe mode (" +
      std::to_string(SafeModeReportedFraction() * 100.0) + "% of " +
      std::to_string(safe_mode_block_target_.load(std::memory_order_relaxed)) +
      " blocks reported)");
}

double Master::SafeModeReportedFraction() const {
  int64_t target = safe_mode_block_target_.load(std::memory_order_relaxed);
  if (!in_safe_mode() || target <= 0) return 1.0;
  int64_t reported = 0;
  blocks_.ForEach([&reported](const BlockRecord& record) {
    if (!record.locations.empty()) ++reported;
  });
  return static_cast<double>(reported) / static_cast<double>(target);
}

void Master::MaybeExitSafeMode() {
  if (!in_safe_mode()) return;
  if (journal_failed()) return;  // fail-stopped; reports cannot lift it
  if (SafeModeReportedFraction() + 1e-12 < options_.safe_mode_threshold) {
    return;
  }
  LeaveSafeMode();
}

void Master::ForceExitSafeMode() {
  std::lock_guard<std::mutex> service(service_mu_);
  if (journal_failed()) return;  // fail-stopped; not even -safemode leave
  if (in_safe_mode()) LeaveSafeMode();
}

void Master::LeaveSafeMode() {
  safe_mode_.store(false, std::memory_order_relaxed);
  // Reconcile what reconstruction found. Replicas reported for blocks the
  // namespace never legitimized are true orphans now: scrub them.
  for (const auto& [medium, block] : deferred_orphans_) {
    const BlockRecord* record = blocks_.Find(block);
    if (record != nullptr &&
        std::find(record->locations.begin(), record->locations.end(),
                  medium) != record->locations.end()) {
      continue;  // adopted by a later report after all
    }
    WorkerCommand cmd;
    cmd.kind = WorkerCommand::Kind::kDeleteReplica;
    cmd.block = block;
    cmd.target_medium = medium;
    QueueCommand(medium, std::move(cmd));
  }
  deferred_orphans_.clear();
  // Blocks nobody reported are lost (no source to re-replicate from);
  // under-replicated ones are queued for repair by the monitor below.
  lost_blocks_.clear();
  blocks_.ForEach([this](const BlockRecord& record) {
    if (record.locations.empty()) lost_blocks_.push_back(record.id);
  });
  if (!lost_blocks_.empty()) {
    OCTO_LOG(Warn) << "safe mode exit: " << lost_blocks_.size()
                   << " block(s) have no reported replica (lost)";
  }
  RunReplicationMonitorLocked();
}

int Master::NumQueuedCommands() const {
  std::lock_guard<std::mutex> service(service_mu_);
  int n = 0;
  for (const auto& [worker, commands] : command_queues_) {
    n += static_cast<int>(commands.size());
  }
  return n;
}

std::vector<std::pair<BlockId, MediumId>> Master::InflightCopiesForTest()
    const {
  std::lock_guard<std::mutex> service(service_mu_);
  std::vector<std::pair<BlockId, MediumId>> out;
  out.reserve(inflight_copies_.size());
  for (const auto& [key, when] : inflight_copies_) out.push_back(key);
  return out;
}

std::vector<WorkerCommand> Master::QueuedCommandsForTest(
    WorkerId worker) const {
  std::lock_guard<std::mutex> service(service_mu_);
  std::vector<WorkerCommand> out;
  auto it = command_queues_.find(worker);
  if (it != command_queues_.end()) {
    out.reserve(it->second.size());
    for (const QueuedCommand& queued : it->second) {
      out.push_back(queued.command);
    }
  }
  return out;
}

RepairStats Master::repair_stats() const {
  std::lock_guard<std::mutex> service(service_mu_);
  return repair_.stats();
}

int Master::RepairInflightForWorker(WorkerId worker) const {
  std::lock_guard<std::mutex> service(service_mu_);
  return repair_.WorkerInflight(worker);
}

int64_t Master::NextRepairRetryMicros() const {
  std::lock_guard<std::mutex> service(service_mu_);
  return repair_.NextRetryMicros(clock_->NowMicros());
}

// ---------------------------------------------------------------------------
// Worker lifecycle (graceful decommission / maintenance)

Status Master::StartDecommission(WorkerId worker) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (state_.FindWorker(worker) == nullptr) {
    return Status::NotFound("worker " + std::to_string(worker));
  }
  WorkerAdminState& admin = admin_states_[worker];
  if (admin == WorkerAdminState::kDecommissioned) {
    return Status::FailedPrecondition("worker " + std::to_string(worker) +
                                      " is already decommissioned");
  }
  admin = WorkerAdminState::kDecommissioning;
  OCTO_RETURN_IF_ERROR(state_.SetWorkerDraining(worker, true));
  OCTO_LOG(Info) << "worker " << worker << " decommissioning";
  return Status::OK();
}

Status Master::StartMaintenance(WorkerId worker) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (state_.FindWorker(worker) == nullptr) {
    return Status::NotFound("worker " + std::to_string(worker));
  }
  WorkerAdminState& admin = admin_states_[worker];
  if (admin == WorkerAdminState::kDecommissioned) {
    return Status::FailedPrecondition("worker " + std::to_string(worker) +
                                      " is already decommissioned");
  }
  admin = WorkerAdminState::kMaintenance;
  OCTO_RETURN_IF_ERROR(state_.SetWorkerDraining(worker, true));
  OCTO_LOG(Info) << "worker " << worker << " entering maintenance";
  return Status::OK();
}

Status Master::Recommission(WorkerId worker) {
  std::lock_guard<std::mutex> service(service_mu_);
  if (state_.FindWorker(worker) == nullptr) {
    return Status::NotFound("worker " + std::to_string(worker));
  }
  admin_states_.erase(worker);
  OCTO_RETURN_IF_ERROR(state_.SetWorkerDraining(worker, false));
  OCTO_LOG(Info) << "worker " << worker << " back in service";
  return Status::OK();
}

WorkerAdminState Master::worker_admin_state(WorkerId worker) const {
  std::lock_guard<std::mutex> service(service_mu_);
  auto it = admin_states_.find(worker);
  return it == admin_states_.end() ? WorkerAdminState::kInService
                                   : it->second;
}

bool Master::WorkerDrained(WorkerId worker) const {
  std::lock_guard<std::mutex> service(service_mu_);
  for (MediumId m : state_.MediaOnWorker(worker)) {
    if (!blocks_.BlocksOnMedium(m).empty()) return false;
  }
  return true;
}

}  // namespace octo
