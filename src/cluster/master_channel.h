#ifndef OCTOPUSFS_CLUSTER_MASTER_CHANNEL_H_
#define OCTOPUSFS_CLUSTER_MASTER_CHANNEL_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/status.h"

namespace octo {

class Master;

/// Retry/backoff policy of a MasterChannel.
struct MasterChannelOptions {
  /// Resolution attempts while no primary is installed before giving up
  /// (each attempt waits one backoff interval and re-checks).
  int max_attempts = 8;
  int64_t initial_backoff_micros = 50 * 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 2 * 1000 * 1000;
  /// Seed for backoff jitter (deterministic per channel).
  uint64_t seed = 42;
};

/// Indirection through which clients and the worker control loop reach
/// the current primary master. In a deployment this would be the
/// NameNode-address resolver (e.g. configured HA pair + failover proxy);
/// in-process it holds a raw pointer that the Cluster retargets when the
/// primary crashes and the backup is promoted.
///
/// Calls made while no primary is live retry with seeded, jittered
/// exponential backoff: the installed waiter runs between attempts (a
/// test pumps promotion/recovery there; a deployment would sleep), so
/// callers fail over to the promoted master instead of crashing or
/// wedging against a dangling pointer.
class MasterChannel {
 public:
  explicit MasterChannel(MasterChannelOptions options = {});

  MasterChannel(const MasterChannel&) = delete;
  MasterChannel& operator=(const MasterChannel&) = delete;

  /// Installs the current primary (nullptr = headless, e.g. between a
  /// crash and the promotion). Bumps the generation when it changes.
  void Retarget(Master* primary);

  /// Current primary without waiting (nullptr when headless).
  Master* primary() const { return primary_; }

  /// Resolves the current primary, waiting with backoff while headless.
  /// Unavailable once the attempt budget is spent with no primary.
  Result<Master*> Resolve();

  /// Times Retarget changed the primary (a failover observed by holders).
  int64_t generation() const { return generation_; }

  /// Jittered exponential backoff for `attempt` (1-based). Deterministic
  /// for a fixed seed and call sequence.
  int64_t BackoffMicros(int attempt);

  /// Runs the waiter hook for `micros` (no-op when none installed).
  void Wait(int64_t micros);

  /// Hook run while a caller backs off (between resolution or safe-mode
  /// retry attempts). Tests install the recovery pump here.
  using Waiter = std::function<void(int64_t micros)>;
  void set_waiter(Waiter waiter) { waiter_ = std::move(waiter); }

  const MasterChannelOptions& options() const { return options_; }

 private:
  MasterChannelOptions options_;
  Random rng_;
  Master* primary_ = nullptr;
  int64_t generation_ = 0;
  Waiter waiter_;
};

}  // namespace octo

#endif  // OCTOPUSFS_CLUSTER_MASTER_CHANNEL_H_
