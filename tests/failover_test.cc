// Master-failover tests: the MasterChannel retry path, epoch fencing in
// both directions (stale commands at workers, stale heartbeats/reports at
// the promoted master), takeover from cold checkpoint / edit-log tail /
// double failover, HDFS-style safe mode (mutation gating, threshold
// exit, lost blocks, deferred orphan invalidation), lease reconstruction
// for writers that outlive the primary, and a seeded chaos harness that
// kills the primary at three distinct injection points mid-workload and
// asserts no acknowledged write is lost and no stale-epoch command runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "cluster/master_channel.h"
#include "common/random.h"
#include "common/units.h"
#include "fault/fault.h"

namespace octo {
namespace {

using fault::FaultRegistry;
using fault::FaultSpec;
using fault::Site;

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 3;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd, hdd};
  return spec;
}

// ---------------------------------------------------------------------------
// MasterChannel unit tests

TEST(MasterChannelTest, ResolveFailsAfterAttemptBudget) {
  MasterChannelOptions options;
  options.max_attempts = 3;
  MasterChannel channel(options);
  int waits = 0;
  channel.set_waiter([&waits](int64_t) { ++waits; });
  Result<Master*> r = channel.Resolve();
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_GE(waits, 1);
  EXPECT_LE(waits, options.max_attempts);
}

TEST(MasterChannelTest, ResolveSucceedsWhenWaiterInstallsPrimary) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  Master* primary = cluster->master();
  MasterChannel channel;
  int waits = 0;
  channel.set_waiter([&](int64_t) {
    // A promotion lands mid-backoff (what the failover pump does).
    if (++waits == 2) channel.Retarget(primary);
  });
  Result<Master*> r = channel.Resolve();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), primary);
  EXPECT_EQ(waits, 2);
}

TEST(MasterChannelTest, BackoffIsSeededJitteredAndCapped) {
  MasterChannelOptions options;
  options.seed = 9;
  MasterChannel a(options), b(options);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    int64_t micros = a.BackoffMicros(attempt);
    EXPECT_EQ(micros, b.BackoffMicros(attempt)) << "attempt " << attempt;
    EXPECT_GT(micros, 0);
    EXPECT_LE(micros, options.max_backoff_micros);
  }
  // A different seed produces a different jitter schedule somewhere.
  options.seed = 10;
  MasterChannel c(options);
  bool differs = false;
  MasterChannel a2({.seed = 9});
  for (int attempt = 1; attempt <= 8; ++attempt) {
    if (a2.BackoffMicros(attempt) != c.BackoffMicros(attempt)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(MasterChannelTest, GenerationCountsFailovers) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  MasterChannel* channel = cluster->master_channel();
  int64_t at_start = channel->generation();
  ASSERT_TRUE(cluster->EnableBackup().ok());
  cluster->CrashMaster();
  EXPECT_EQ(channel->primary(), nullptr);
  EXPECT_EQ(channel->generation(), at_start + 1);
  ASSERT_TRUE(cluster->PromoteBackup().ok());
  EXPECT_EQ(channel->primary(), cluster->master());
  EXPECT_EQ(channel->generation(), at_start + 2);
}

// ---------------------------------------------------------------------------
// Failover fixture

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(SmallSpec()); }

  void Build(const ClusterSpec& spec) {
    auto cluster = Cluster::Create(spec);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    ASSERT_TRUE(cluster_->EnableBackup().ok());
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
  }

  void WriteTestFile(const std::string& path, const std::string& content,
                     const CreateOptions& options = CreateOptions{}) {
    ASSERT_TRUE(fs_->WriteFile(path, content, options).ok()) << path;
  }

  /// Crashes the primary and brings the replacement all the way up:
  /// promotion, worker re-registration, block-report replay, safe-mode
  /// exit.
  void Failover() {
    cluster_->CrashMaster();
    ASSERT_TRUE(cluster_->headless());
    ASSERT_TRUE(cluster_->PromoteBackup().ok());
    ASSERT_TRUE(cluster_->SendBlockReports().ok());
    ASSERT_FALSE(cluster_->master()->in_safe_mode());
  }

  Result<LocatedBlock> FirstBlockOf(const std::string& path) {
    OCTO_ASSIGN_OR_RETURN(std::vector<LocatedBlock> blocks,
                          fs_->GetFileBlockLocations(path, 0, 1));
    if (blocks.empty()) return Status::NotFound("no blocks: " + path);
    return blocks.front();
  }

  int NumLocations(BlockId block) {
    const BlockRecord* record =
        cluster_->master()->block_manager().Find(block);
    return record == nullptr ? -1 : static_cast<int>(record->locations.size());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

// ---------------------------------------------------------------------------
// Takeover paths (satellite d)

TEST_F(FailoverTest, TakeoverWithColdCheckpoint) {
  const std::string content(96 * 1024, 'a');
  WriteTestFile("/warm/a", content);
  ASSERT_TRUE(fs_->Mkdirs("/warm/dir").ok());
  // Everything is folded into the checkpoint; the tail is empty.
  ASSERT_TRUE(cluster_->CheckpointBackup().ok());
  ASSERT_GT(cluster_->backup_master()->checkpoint_offset(), 0);
  Failover();

  EXPECT_EQ(cluster_->master()->epoch(), 2u);
  EXPECT_TRUE(fs_->Exists("/warm/dir"));
  auto data = fs_->ReadFile("/warm/a");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, content);
  // The rebuilt block map converges back to full replication.
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  auto located = FirstBlockOf("/warm/a");
  ASSERT_TRUE(located.ok());
  EXPECT_EQ(NumLocations(located->block.id), 3);
}

TEST_F(FailoverTest, TakeoverReplaysEditLogTail) {
  const std::string before(64 * 1024, 'b');
  const std::string after(64 * 1024, 'c');
  WriteTestFile("/pre", before);
  ASSERT_TRUE(cluster_->CheckpointBackup().ok());
  // Journaled after the checkpoint: only the edit-log tail carries these.
  WriteTestFile("/post", after);
  ASSERT_TRUE(fs_->Rename("/pre", "/pre2").ok());
  Failover();

  EXPECT_EQ(cluster_->master()->epoch(), 2u);
  EXPECT_FALSE(fs_->Exists("/pre"));
  auto b = fs_->ReadFile("/pre2");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, before);
  auto a = fs_->ReadFile("/post");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, after);
}

TEST_F(FailoverTest, TakeoverWithNoCheckpointReplaysWholeLog) {
  const std::string content(32 * 1024, 'd');
  WriteTestFile("/nockpt", content);
  Failover();
  auto data = fs_->ReadFile("/nockpt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, content);
}

TEST_F(FailoverTest, DoubleTakeoverBumpsEpochTwiceAndKeepsNamespace) {
  const std::string one(48 * 1024, '1');
  const std::string two(48 * 1024, '2');
  WriteTestFile("/one", one);
  Failover();
  EXPECT_EQ(cluster_->master()->epoch(), 2u);
  // The fresh backup bootstrapped from the promoted master's live state;
  // writes against the new primary land in its (new) edit log.
  WriteTestFile("/two", two);
  Failover();
  EXPECT_EQ(cluster_->master()->epoch(), 3u);

  auto a = fs_->ReadFile("/one");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(*a, one);
  auto b = fs_->ReadFile("/two");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(*b, two);
  // Workers follow the epoch chain.
  for (WorkerId id : cluster_->worker_ids()) {
    EXPECT_EQ(cluster_->worker(id)->master_epoch(), 3u);
  }
}

TEST_F(FailoverTest, CrashDuringCheckpointFallsBackToSyncedTail) {
  const std::string early(40 * 1024, 'e');
  const std::string late(40 * 1024, 'l');
  WriteTestFile("/early", early);
  ASSERT_TRUE(cluster_->CheckpointBackup().ok());
  int64_t offset_before = cluster_->backup_master()->checkpoint_offset();
  WriteTestFile("/late", late);

  FaultRegistry faults(5);
  cluster_->InstallFaultRegistry(&faults);
  faults.Arm({.site = Site::kMasterCrashDuringCheckpoint, .max_hits = 1});
  Status st = cluster_->CheckpointBackup();
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_TRUE(cluster_->headless());
  // The aborted cycle synced the tail but kept the previous checkpoint.
  EXPECT_EQ(cluster_->backup_master()->checkpoint_offset(), offset_before);

  ASSERT_TRUE(cluster_->PromoteBackup().ok());
  ASSERT_TRUE(cluster_->SendBlockReports().ok());
  auto a = fs_->ReadFile("/early");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, early);
  auto b = fs_->ReadFile("/late");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, late);
  EXPECT_EQ(faults.hits(Site::kMasterCrashDuringCheckpoint), 1);
}

// ---------------------------------------------------------------------------
// Epoch fencing

TEST_F(FailoverTest, StaleEpochCommandsAreRejectedByWorkers) {
  const std::string content(80 * 1024, 's');
  WriteTestFile("/fenced", content);
  auto located = FirstBlockOf("/fenced");
  ASSERT_TRUE(located.ok());
  ASSERT_EQ(located->locations.size(), 3u);

  // Lose one replica so the (old) primary queues a re-replication copy.
  WorkerId lost = located->locations[0].worker;
  cluster_->StopWorker(lost);
  ASSERT_GE(cluster_->master()->RunReplicationMonitor(), 1);
  auto inflight = cluster_->master()->InflightCopiesForTest();
  ASSERT_FALSE(inflight.empty());
  const MediumInfo* target_medium =
      cluster_->master()->cluster_state().FindMedium(inflight[0].second);
  ASSERT_NE(target_medium, nullptr);
  WorkerId target = target_medium->worker;
  Worker* tw = cluster_->worker(target);
  ASSERT_NE(tw, nullptr);

  // Fetch the copy command from the doomed primary but do NOT execute it
  // — this is the in-flight command a real deployment would have on the
  // wire when the master dies.
  auto commands = cluster_->master()->Heartbeat(tw->BuildHeartbeat());
  ASSERT_TRUE(commands.ok());
  ASSERT_FALSE(commands->empty());
  EXPECT_EQ((*commands)[0].epoch, 1u);

  Failover();
  EXPECT_EQ(tw->master_epoch(), 2u);

  // Delivering the deposed master's commands now must execute nothing:
  // the worker refuses the stale epoch. Removing AdmitCommand from the
  // execution path makes this fail.
  int64_t rejected_before = tw->stale_commands_rejected();
  auto executed = cluster_->DeliverCommands(target, *commands);
  ASSERT_TRUE(executed.ok());
  EXPECT_EQ(*executed, 0);
  EXPECT_GT(tw->stale_commands_rejected(), rejected_before);
  for (const WorkerCommand& cmd : *commands) {
    if (cmd.kind == WorkerCommand::Kind::kCopyReplica) {
      EXPECT_FALSE(tw->HasBlock(cmd.target_medium, cmd.block));
    }
  }

  // The promoted master repairs through its own, current-epoch commands.
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  EXPECT_EQ(NumLocations(located->block.id), 3);
}

TEST_F(FailoverTest, StaleHeartbeatsAndReportsAreFenced) {
  WriteTestFile("/fence2", std::string(16 * 1024, 'f'));
  Failover();
  Master* m = cluster_->master();
  ASSERT_EQ(m->epoch(), 2u);
  WorkerId id = cluster_->worker_ids().front();
  Worker* w = cluster_->worker(id);

  // A heartbeat addressed to the predecessor (epoch 1) is refused.
  HeartbeatPayload hb = w->BuildHeartbeat();
  hb.master_epoch = 1;
  EXPECT_TRUE(m->Heartbeat(hb).status().IsFailedPrecondition());
  // A heartbeat from a worker that has seen a *newer* master means this
  // master itself is deposed.
  hb.master_epoch = 3;
  EXPECT_TRUE(m->Heartbeat(hb).status().IsFailedPrecondition());
  // Same fencing on block reports, both directions.
  BlockReport report = w->BuildBlockReport();
  EXPECT_TRUE(m->ProcessBlockReport(id, report, 1).IsFailedPrecondition());
  EXPECT_TRUE(m->ProcessBlockReport(id, report, 3).IsFailedPrecondition());
  // The current epoch is accepted.
  EXPECT_TRUE(m->ProcessBlockReport(id, report, 2).ok());
}

// ---------------------------------------------------------------------------
// Safe mode

TEST_F(FailoverTest, SafeModeGatesMutationsUntilBlocksReported) {
  const std::string content(24 * 1024, 'g');
  WriteTestFile("/gated", content);
  auto located = FirstBlockOf("/gated");
  ASSERT_TRUE(located.ok());
  std::set<WorkerId> hosts;
  for (const PlacedReplica& r : located->locations) hosts.insert(r.worker);

  cluster_->CrashMaster();
  EXPECT_TRUE(cluster_->SendBlockReports().IsUnavailable());
  ASSERT_TRUE(cluster_->PromoteBackup().ok());
  Master* m = cluster_->master();
  EXPECT_TRUE(m->in_safe_mode());
  EXPECT_EQ(m->SafeModeReportedFraction(), 0.0);

  // Mutations are refused; reads of the reconstructed namespace work.
  EXPECT_TRUE(m->Mkdirs("/nope", UserContext{}).IsUnavailable());
  EXPECT_TRUE(
      m->Create("/nope2", ReplicationVector::OfTotal(3), 64 * 1024, false,
                UserContext{}, "writer")
          .IsUnavailable());
  EXPECT_TRUE(m->SetReplication("/gated", ReplicationVector::OfTotal(2),
                                UserContext{})
                  .IsUnavailable());
  EXPECT_EQ(m->RunReplicationMonitor(), 0);
  EXPECT_TRUE(fs_->Exists("/gated"));

  // A report from a worker hosting no replica of the block moves nothing.
  WorkerId outsider = kInvalidWorker;
  for (WorkerId id : cluster_->worker_ids()) {
    if (hosts.count(id) == 0) outsider = id;
  }
  ASSERT_NE(outsider, kInvalidWorker);
  Worker* ow = cluster_->worker(outsider);
  ASSERT_TRUE(cluster_->EnsureRegistered(ow).ok());
  ASSERT_TRUE(
      m->ProcessBlockReport(outsider, ow->BuildBlockReport(), m->epoch())
          .ok());
  EXPECT_TRUE(m->in_safe_mode());
  EXPECT_LT(m->SafeModeReportedFraction(), 1.0);

  // Full reports push the fraction over the threshold; safe mode exits.
  ASSERT_TRUE(cluster_->SendBlockReports().ok());
  EXPECT_FALSE(m->in_safe_mode());
  EXPECT_EQ(m->SafeModeReportedFraction(), 1.0);
  EXPECT_TRUE(m->lost_blocks().empty());
  EXPECT_TRUE(m->Mkdirs("/yes", UserContext{}).ok());
  auto data = fs_->ReadFile("/gated");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, content);
}

TEST_F(FailoverTest, SafeModeRecordsLostBlocksOnForcedExit) {
  CreateOptions solo;
  solo.rep_vector = ReplicationVector::OfTotal(1);
  WriteTestFile("/solo", std::string(16 * 1024, 's'), solo);
  WriteTestFile("/sturdy", std::string(16 * 1024, 't'));
  auto located = FirstBlockOf("/solo");
  ASSERT_TRUE(located.ok());
  ASSERT_EQ(located->locations.size(), 1u);
  WorkerId host = located->locations[0].worker;
  BlockId solo_block = located->block.id;

  cluster_->CrashMaster();
  cluster_->StopWorker(host);  // the only replica dies with its worker
  ASSERT_TRUE(cluster_->PromoteBackup().ok());
  Master* m = cluster_->master();
  ASSERT_TRUE(cluster_->SendBlockReports().ok());
  // /sturdy reported, /solo cannot be: below the (0.999) threshold.
  EXPECT_TRUE(m->in_safe_mode());
  EXPECT_LT(m->SafeModeReportedFraction(), 1.0);
  EXPECT_GT(m->SafeModeReportedFraction(), 0.0);

  // The operator override (dfsadmin -safemode leave) reconciles anyway.
  m->ForceExitSafeMode();
  EXPECT_FALSE(m->in_safe_mode());
  ASSERT_EQ(m->lost_blocks().size(), 1u);
  EXPECT_EQ(m->lost_blocks()[0], solo_block);
  // The sturdy file survived; the lost one has nothing to read from.
  EXPECT_TRUE(fs_->ReadFile("/sturdy").ok());
  EXPECT_FALSE(fs_->ReadFile("/solo").ok());
}

TEST_F(FailoverTest, SafeModeThresholdIsConfigurable) {
  ClusterSpec spec = SmallSpec();
  spec.master.safe_mode_threshold = 0.5;
  Build(spec);

  CreateOptions solo;
  solo.rep_vector = ReplicationVector::OfTotal(1);
  WriteTestFile("/solo", std::string(16 * 1024, 's'), solo);
  WriteTestFile("/sturdy", std::string(16 * 1024, 't'));
  auto located = FirstBlockOf("/solo");
  ASSERT_TRUE(located.ok());
  cluster_->CrashMaster();
  cluster_->StopWorker(located->locations[0].worker);
  ASSERT_TRUE(cluster_->PromoteBackup().ok());
  // 1 of 2 blocks reported = 0.5 >= threshold: exits on its own, and the
  // unreported block is declared lost at exit.
  ASSERT_TRUE(cluster_->SendBlockReports().ok());
  EXPECT_FALSE(cluster_->master()->in_safe_mode());
  ASSERT_EQ(cluster_->master()->lost_blocks().size(), 1u);
  EXPECT_EQ(cluster_->master()->lost_blocks()[0], located->block.id);
}

TEST_F(FailoverTest, SafeModeDefersOrphanInvalidationUntilExit) {
  const std::string keep(16 * 1024, 'k');
  WriteTestFile("/keep", keep);
  ASSERT_TRUE(cluster_->CheckpointBackup().ok());
  WriteTestFile("/orphan", std::string(16 * 1024, 'o'));
  auto located = FirstBlockOf("/orphan");
  ASSERT_TRUE(located.ok());
  BlockId orphan = located->block.id;
  MediumId medium = located->locations[0].medium;
  Worker* host = cluster_->worker(located->locations[0].worker);
  ASSERT_NE(host, nullptr);

  // Delete journals into the tail; the invalidation commands die with the
  // primary before any heartbeat delivers them — the bytes stay put.
  ASSERT_TRUE(fs_->Delete("/orphan").ok());
  ASSERT_TRUE(host->HasBlock(medium, orphan));
  cluster_->CrashMaster();
  ASSERT_TRUE(cluster_->PromoteBackup().ok());
  ASSERT_TRUE(cluster_->master()->in_safe_mode());

  // Reports during reconstruction surface the orphan replicas, but safe
  // mode must not destroy data it has not finished accounting: the bytes
  // survive until exit, then the deferred scrub runs via commands.
  ASSERT_TRUE(cluster_->SendBlockReports().ok());
  EXPECT_FALSE(cluster_->master()->in_safe_mode());
  EXPECT_TRUE(host->HasBlock(medium, orphan));
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  EXPECT_FALSE(host->HasBlock(medium, orphan));
  // The kept file is untouched throughout.
  auto data = fs_->ReadFile("/keep");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, keep);
}

// ---------------------------------------------------------------------------
// Lease reconstruction (satellite d)

TEST_F(FailoverTest, WriterLeaseSurvivesFailover) {
  CreateOptions options;
  options.block_size = 64 * 1024;
  auto writer = fs_->Create("/journal", options);
  ASSERT_TRUE(writer.ok());
  const std::string first(64 * 1024, '1');   // full block: flushed+committed
  const std::string second(64 * 1024, '2');
  ASSERT_TRUE((*writer)->Write(first).ok());

  Failover();

  // The promoted master rebuilt the lease from the journaled CREATE
  // holder; the surviving writer keeps writing and completes the file.
  ASSERT_TRUE((*writer)->Write(second).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto data = fs_->ReadFile("/journal");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, first + second);

  // And the lease was real: a second client cannot reopen mid-write...
  auto writer2 = fs_->Create("/journal2", options);
  ASSERT_TRUE(writer2.ok());
  ASSERT_TRUE((*writer2)->Write(first).ok());
  Failover();
  FileSystem other(cluster_.get(), NetworkLocation("rack1", "node0"));
  EXPECT_FALSE(other.Append("/journal2").ok());
  ASSERT_TRUE((*writer2)->Close().ok());
}

// ---------------------------------------------------------------------------
// Pipeline abandon-and-retry (satellite a)

TEST_F(FailoverTest, WriterAbandonsBlockAndRetriesOnWholePipelineFailure) {
  FaultRegistry faults(11);
  cluster_->InstallFaultRegistry(&faults);
  // Exactly one whole pipeline's worth of write failures (3 legs for
  // RF 3): the first allocation fails everywhere, is abandoned, and the
  // retried allocation goes through cleanly.
  faults.Arm({.site = Site::kStoreWrite, .max_hits = 3});
  const std::string content(32 * 1024, 'p');
  ASSERT_TRUE(fs_->WriteFile("/retried", content, CreateOptions{}).ok());
  EXPECT_EQ(faults.hits(Site::kStoreWrite), 3);

  auto data = fs_->ReadFile("/retried");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, content);
  // Exactly one (live) block: the abandoned allocation left no record.
  auto blocks = fs_->GetFileBlockLocations("/retried", 0, content.size());
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ((*blocks)[0].locations.size(), 3u);
}

// ---------------------------------------------------------------------------
// Scrub findings ride the heartbeat (satellite b)

TEST_F(FailoverTest, ScrubFindingsReachMasterViaHeartbeat) {
  const std::string content(20 * 1024, 'c');
  WriteTestFile("/scrubbed", content);
  auto located = FirstBlockOf("/scrubbed");
  ASSERT_TRUE(located.ok());
  BlockId block = located->block.id;
  MediumId medium = located->locations[0].medium;
  Worker* host = cluster_->worker(located->locations[0].worker);
  ASSERT_TRUE(host->CorruptBlock(medium, block).ok());

  // The scrubber runs locally on the worker; nothing reported yet.
  auto findings = host->ScrubBlocks();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0], std::make_pair(medium, block));
  EXPECT_EQ(NumLocations(block), 3);

  // The next heartbeat carries the bad-replica report; the master drops
  // the corrupt location and the monitor restores full replication.
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  EXPECT_EQ(NumLocations(block), 2);
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  EXPECT_EQ(NumLocations(block), 3);
  auto data = fs_->ReadFile("/scrubbed");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, content);
}

// ---------------------------------------------------------------------------
// Clients ride through a failover via the channel

TEST_F(FailoverTest, ClientCallDuringHeadlessWindowFailsOverToPromoted) {
  const std::string content(28 * 1024, 'h');
  WriteTestFile("/window", content);
  cluster_->CrashMaster();
  int promotions = 0;
  cluster_->master_channel()->set_waiter([&](int64_t) {
    if (cluster_->headless()) {
      ASSERT_TRUE(cluster_->PromoteBackup().ok());
      ASSERT_TRUE(cluster_->SendBlockReports().ok());
      ++promotions;
    }
  });
  // The read was issued into a headless cluster; the channel retries and
  // lands on the promoted master.
  auto data = fs_->ReadFile("/window");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, content);
  EXPECT_EQ(promotions, 1);
}

// ---------------------------------------------------------------------------
// Seeded failover chaos: the primary dies at three distinct injection
// points while a DFSIO-style workload runs. Invariants: every
// acknowledged write stays readable byte-for-byte, no stale-epoch
// command executes, and the cluster converges to full replication.

struct FailoverChaosSummary {
  int files_acked = 0;
  int64_t bytes_acked = 0;
  uint64_t content_hash = 0;
  int64_t stale_rejected = 0;
  uint64_t final_epoch = 0;

  bool operator==(const FailoverChaosSummary& other) const {
    return files_acked == other.files_acked &&
           bytes_acked == other.bytes_acked &&
           content_hash == other.content_hash &&
           stale_rejected == other.stale_rejected &&
           final_epoch == other.final_epoch;
  }
};

FailoverChaosSummary RunFailoverChaos(uint64_t seed) {
  FailoverChaosSummary summary;
  ClusterSpec spec = SmallSpec();
  spec.channel.seed = seed;
  auto created = Cluster::Create(spec);
  EXPECT_TRUE(created.ok());
  auto cluster = std::move(created).value();
  FaultRegistry faults(seed);
  cluster->InstallFaultRegistry(&faults);
  EXPECT_TRUE(cluster->EnableBackup().ok());
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));

  // The recovery pump lives in the channel waiter, exactly where a
  // deployment's failover proxy would block: promote when headless, then
  // feed reports until the replacement leaves safe mode.
  cluster->master_channel()->set_waiter([&](int64_t) {
    if (cluster->headless()) {
      EXPECT_TRUE(cluster->PromoteBackup().ok());
    }
    if (!cluster->headless()) {
      (void)cluster->SendBlockReports();
      (void)cluster->PumpHeartbeats();
    }
  });

  Random rng(seed * 131 + 7);
  // Three distinct, seeded injection points in disjoint round windows:
  // (1) the primary dies at the start of a control round, (2) it dies
  // mid-checkpoint, (3) it dies between two blocks of an open write.
  const int crash_round = 3 + static_cast<int>(rng.Uniform(5));
  const int ckpt_crash_round = 12 + static_cast<int>(rng.Uniform(5));
  const int midwrite_crash_round = 22 + static_cast<int>(rng.Uniform(5));
  int midwrite_crashes = 0;

  std::map<std::string, std::string> acked;
  constexpr int kRounds = 32;
  constexpr int64_t kBlock = 64 * 1024;
  for (int round = 0; round < kRounds; ++round) {
    if (round == crash_round) {
      faults.Arm({.site = Site::kMasterCrash, .max_hits = 1});
    }
    if (round == ckpt_crash_round) {
      faults.Arm({.site = Site::kMasterCrashDuringCheckpoint, .max_hits = 1});
    }

    // DFSIO-style writer: two blocks per file, fresh path per round.
    const std::string path = "/chaos/f" + std::to_string(round);
    std::string content(2 * kBlock, static_cast<char>(
                                        'a' + (round + seed) % 26));
    CreateOptions options;
    options.block_size = kBlock;
    auto writer = fs.Create(path, options);
    EXPECT_TRUE(writer.ok()) << path << ": " << writer.status().ToString();
    if (writer.ok()) {
      bool ok = (*writer)->Write(
          std::string_view(content).substr(0, kBlock)).ok();
      if (round == midwrite_crash_round && !cluster->headless()) {
        cluster->CrashMaster();  // the writer's next flush rides it out
        ++midwrite_crashes;
      }
      ok = ok && (*writer)->Write(
          std::string_view(content).substr(kBlock)).ok();
      ok = ok && (*writer)->Close().ok();
      if (ok) {
        acked[path] = std::move(content);
        summary.bytes_acked += 2 * kBlock;
      }
    }

    // Periodic checkpoint cycle (may itself kill the primary).
    if (round % 3 == 2) (void)cluster->CheckpointBackup();
    // Control round (may fire kMasterCrash; headless rounds are no-ops).
    if (!cluster->headless()) {
      cluster->master()->RunReplicationMonitor();
      EXPECT_TRUE(cluster->PumpHeartbeats().ok());
    }
    if (round % 4 == 3 && !cluster->headless()) {
      EXPECT_TRUE(cluster->SendBlockReports().ok());
    }

    // Read back a random acknowledged file — including across the
    // headless window, where the channel retries into the replacement.
    if (!acked.empty() && rng.Uniform(2) == 0) {
      auto it = acked.begin();
      std::advance(it, rng.Uniform(acked.size()));
      auto data = fs.ReadFile(it->first);
      EXPECT_TRUE(data.ok()) << it->first;
      if (data.ok()) {
        EXPECT_EQ(*data, it->second) << it->first;
      }
    }
  }

  // All three injection points actually fired.
  EXPECT_EQ(faults.hits(Site::kMasterCrash), 1);
  EXPECT_EQ(faults.hits(Site::kMasterCrashDuringCheckpoint), 1);
  EXPECT_EQ(midwrite_crashes, 1);

  // Drain: ensure a primary, then converge.
  faults.ClearAll();
  if (cluster->headless()) {
    EXPECT_TRUE(cluster->PromoteBackup().ok());
  }
  EXPECT_TRUE(cluster->SendBlockReports().ok());
  EXPECT_FALSE(cluster->master()->in_safe_mode());
  EXPECT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  EXPECT_TRUE(cluster->SendBlockReports().ok());
  EXPECT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  EXPECT_TRUE(cluster->master()->lost_blocks().empty());

  // Zero acknowledged-write loss, full replication for every block.
  for (const auto& [path, content] : acked) {
    auto data = fs.ReadFile(path);
    EXPECT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    if (data.ok()) {
      EXPECT_EQ(*data, content) << path;
    }
    auto blocks = fs.GetFileBlockLocations(
        path, 0, static_cast<int64_t>(content.size()));
    EXPECT_TRUE(blocks.ok());
    if (blocks.ok()) {
      for (const LocatedBlock& lb : *blocks) {
        EXPECT_EQ(lb.locations.size(), 3u) << path;
      }
    }
    // Order-stable digest (std::map iterates sorted paths).
    for (char c : path) summary.content_hash = summary.content_hash * 131 + c;
    summary.content_hash =
        summary.content_hash * 1000003 + (data.ok() ? content.size() : 0);
    ++summary.files_acked;
  }
  for (WorkerId id : cluster->worker_ids()) {
    summary.stale_rejected += cluster->worker(id)->stale_commands_rejected();
  }
  summary.final_epoch = cluster->master()->epoch();
  // Three crashes → three promotions.
  EXPECT_EQ(summary.final_epoch, 4u);
  EXPECT_EQ(summary.files_acked, kRounds);
  return summary;
}

TEST(FailoverChaosTest, Seed1) { RunFailoverChaos(1); }
TEST(FailoverChaosTest, Seed7) { RunFailoverChaos(7); }
TEST(FailoverChaosTest, Seed42) { RunFailoverChaos(42); }

TEST(FailoverChaosTest, SameSeedSameOutcome) {
  FailoverChaosSummary a = RunFailoverChaos(1234);
  FailoverChaosSummary b = RunFailoverChaos(1234);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace octo
