// Golden determinism test for the placement policies: a fixed 3-rack,
// 3-tier cluster, a seeded Random, and a scripted sequence of placement
// decisions interleaved with cluster mutations must reproduce exactly
// the checked-in media ids. This pins the policies' observable behaviour
// bit-for-bit, so hot-path rewrites (incremental scoring, candidate
// indexes) can be validated as pure optimizations: the expectations were
// captured before the optimization landed and must never change.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "common/units.h"
#include "core/cluster_state.h"
#include "core/placement.h"

namespace octo {
namespace {

// Captured from the original (pre-optimization) implementation. Any diff
// here means placements are no longer deterministic or the policy
// semantics changed — both are regressions, not tuning.
constexpr const char* kGolden =
    "moop0:0,33,9;moop1:20,29,35;moop2:28,21,17;moop3:8,13,23;moop4:1,32,5;"
    "moop5:20,25,34;dflt0:22,9,37;dflt1:29,11,7;dflt2:10,33,6;dflt3:1,31,26;"
    "rerep:21;db0:2,30,10;db1:22,30,14;db2:30,15,27;lb0:23,3,12;"
    "lb1:31,36,39;lb2:38,24,37;ft0:29,6,0;ft1:8,23,5;ft2:0,31,5;"
    "tm0:20,5,37;tm1:0,33,9;tm2:20,9,21;rule0:4,25,10;rule1:8,25,34;"
    "rule2:16,17,18;rule3:24,9,6;hdfs0:29,37,21;hdfs1:13,33,30;"
    "hdfs2:1,38,22;hdfs3:23,25,31;rm0:6;rm1:1;rm2:-;";

class GoldenCluster {
 public:
  GoldenCluster() {
    state_.AddTier({kMemoryTier, "Memory", MediaType::kMemory});
    state_.AddTier({kSsdTier, "SSD", MediaType::kSsd});
    state_.AddTier({kHddTier, "HDD", MediaType::kHdd});
    for (int r = 0; r < 3; ++r) {
      for (int n = 0; n < 3; ++n) AddWorker(r, n);
    }
  }

  void AddWorker(int rack, int node) {
    WorkerInfo w;
    w.id = next_worker_++;
    w.location = NetworkLocation("r" + std::to_string(rack),
                                 "n" + std::to_string(node));
    w.net_bps = 1.25e9;
    ASSERT_TRUE_OK(state_.AddWorker(w));
    // Capacities vary per worker so scores are not fully symmetric.
    int64_t scale = 1 + w.id % 3;
    Add(w, kMemoryTier, MediaType::kMemory, 64 * kMiB * scale, 1900, 3200);
    Add(w, kSsdTier, MediaType::kSsd, 256 * kMiB * scale, 340, 420);
    Add(w, kHddTier, MediaType::kHdd, 1024 * kMiB * scale, 126, 177);
    Add(w, kHddTier, MediaType::kHdd, 1024 * kMiB * scale, 110, 150);
  }

  ClusterState& state() { return state_; }

 private:
  static void ASSERT_TRUE_OK(const Status& s) { ASSERT_TRUE(s.ok()); }

  void Add(const WorkerInfo& w, TierId tier, MediaType type, int64_t cap,
           double write_mbps, double read_mbps) {
    MediumInfo m;
    m.id = next_medium_++;
    m.worker = w.id;
    m.location = w.location;
    m.tier = tier;
    m.type = type;
    m.capacity_bytes = cap;
    m.remaining_bytes = cap;
    m.write_bps = FromMBps(write_mbps);
    m.read_bps = FromMBps(read_mbps);
    ASSERT_TRUE_OK(state_.AddMedium(m));
  }

  ClusterState state_;
  WorkerId next_worker_ = 0;
  MediumId next_medium_ = 0;
};

// Runs the scripted scenario and serializes every decision:
//   "<tag>:<id>,<id>,...;" per placement, "<tag>:-" on failure.
std::string RunScenario() {
  GoldenCluster cluster;
  ClusterState& state = cluster.state();
  Random rng(20170614);
  std::string out;

  auto record = [&out](const std::string& tag,
                       const Result<std::vector<MediumId>>& placed) {
    out += tag + ":";
    if (!placed.ok()) {
      out += "-";
    } else {
      for (size_t i = 0; i < placed->size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string((*placed)[i]);
      }
    }
    out += ";";
  };

  // Churn applied after every placement, as the Master would.
  auto commit = [&state](const Result<std::vector<MediumId>>& placed,
                         int64_t block) {
    if (!placed.ok()) return;
    for (MediumId id : *placed) {
      EXPECT_TRUE(state.AdjustMediumRemaining(id, -block).ok());
      state.AddMediumConnections(id, 1);
    }
  };

  const NetworkLocation clients[] = {
      NetworkLocation("r0", "n0"), NetworkLocation("r1", "n2"),
      NetworkLocation("r2", "n1"), NetworkLocation(),  // off-cluster
  };

  // 1. MOOP with memory enabled: mixed replication vectors.
  {
    MoopOptions options;
    options.use_memory = true;
    auto policy = MakeMoopPolicy(options);
    for (int i = 0; i < 6; ++i) {
      PlacementRequest request;
      request.client = clients[i % 4];
      request.rep_vector = i % 2 == 0 ? ReplicationVector::OfTotal(3)
                                      : ReplicationVector::Of(1, 1, 1);
      request.block_size = 8 * kMiB;
      auto placed = policy->PlaceReplicas(state, request, &rng);
      record("moop" + std::to_string(i), placed);
      commit(placed, request.block_size);
    }
  }

  // 2. Mutations between decisions: heartbeat stats, a worker death, a
  //    late-registering worker with fresh media.
  EXPECT_TRUE(state.UpdateMediumStats(4, 10 * kMiB, 7).ok());
  EXPECT_TRUE(state.UpdateMediumStats(13, 100 * kMiB, 2).ok());
  EXPECT_TRUE(state.SetWorkerAlive(4, false).ok());
  cluster.AddWorker(1, 9);  // worker 9, media 36..39

  // 3. Default MOOP (memory off for U) after the mutations.
  {
    auto policy = MakeMoopPolicy();
    for (int i = 0; i < 4; ++i) {
      PlacementRequest request;
      request.client = clients[(i + 1) % 4];
      request.rep_vector = i % 2 == 0 ? ReplicationVector::OfTotal(3)
                                      : ReplicationVector::Of(0, 1, 2);
      request.block_size = 4 * kMiB;
      auto placed = policy->PlaceReplicas(state, request, &rng);
      record("dflt" + std::to_string(i), placed);
      commit(placed, request.block_size);
    }
  }

  // 4. Re-replication: existing replicas count toward diversity.
  {
    auto policy = MakeMoopPolicy();
    PlacementRequest request;
    request.rep_vector = ReplicationVector::OfTotal(1);
    request.block_size = 4 * kMiB;
    request.existing = {2, 3};  // two HDDs on worker 0 (rack r0)
    auto placed = policy->PlaceReplicas(state, request, &rng);
    record("rerep", placed);
    commit(placed, request.block_size);
  }

  // 5. Every single-objective policy.
  const Objective objectives[] = {
      Objective::kDataBalancing, Objective::kLoadBalancing,
      Objective::kFaultTolerance, Objective::kThroughputMax};
  const char* names[] = {"db", "lb", "ft", "tm"};
  for (int o = 0; o < 4; ++o) {
    auto policy = MakeSingleObjectivePolicy(objectives[o]);
    for (int i = 0; i < 3; ++i) {
      PlacementRequest request;
      request.client = clients[(o + i) % 4];
      request.rep_vector = ReplicationVector::OfTotal(3);
      request.block_size = 2 * kMiB;
      auto placed = policy->PlaceReplicas(state, request, &rng);
      record(std::string(names[o]) + std::to_string(i), placed);
      commit(placed, request.block_size);
    }
  }

  // 6. The worker comes back; more churn.
  EXPECT_TRUE(state.SetWorkerAlive(4, true).ok());
  EXPECT_TRUE(state.UpdateMediumStats(20, 200 * kMiB, 1).ok());

  // 7. Rule-based and HDFS baselines.
  {
    auto policy = MakeRuleBasedPolicy();
    for (int i = 0; i < 4; ++i) {
      PlacementRequest request;
      request.client = clients[i % 4];
      request.rep_vector = ReplicationVector::OfTotal(3);
      request.block_size = 2 * kMiB;
      auto placed = policy->PlaceReplicas(state, request, &rng);
      record("rule" + std::to_string(i), placed);
      commit(placed, request.block_size);
    }
  }
  {
    auto policy = MakeHdfsPolicy({MediaType::kHdd, MediaType::kSsd});
    for (int i = 0; i < 4; ++i) {
      PlacementRequest request;
      request.client = clients[(i + 2) % 4];
      request.rep_vector = ReplicationVector::OfTotal(3);
      request.block_size = 2 * kMiB;
      auto placed = policy->PlaceReplicas(state, request, &rng);
      record("hdfs" + std::to_string(i), placed);
      commit(placed, request.block_size);
    }
  }

  // 8. Over-replication victims.
  {
    auto v1 = SelectReplicaToRemove(state, {2, 3, 6, 10}, kHddTier, kMiB);
    out += "rm0:" + (v1.ok() ? std::to_string(*v1) : "-") + ";";
    auto v2 = SelectReplicaToRemove(state, {0, 1, 5, 9}, kSsdTier, kMiB);
    out += "rm1:" + (v2.ok() ? std::to_string(*v2) : "-") + ";";
    auto v3 = SelectReplicaToRemove(state, {2, 6, 10, 14}, kMemoryTier, kMiB);
    out += "rm2:" + (v3.ok() ? std::to_string(*v3) : "-") + ";";
  }

  return out;
}

TEST(PlacementGoldenTest, ScriptedScenarioIsBitIdentical) {
  std::string actual = RunScenario();
  EXPECT_EQ(actual, kGolden) << "ACTUAL: " << actual;
}

// Two back-to-back runs from the same seed must agree with each other
// even if the golden string is regenerated.
TEST(PlacementGoldenTest, RepeatedRunsAgree) {
  EXPECT_EQ(RunScenario(), RunScenario());
}

}  // namespace
}  // namespace octo
