// Property test for the incremental max-min solver: random churn of
// starts / cancels / time advances / completions, with the production
// solver's rates compared BITWISE after every step against
// Simulation::NaiveRatesForTest() — a retained from-scratch progressive
// filling oracle that shares no incremental state (no slab, no
// component cache, no worklists, no share heap). Any divergence in
// freeze order, slack handling, or lazy accounting shows up as a rate
// mismatch long before it would skew a figure bench.
//
// Also covered: rate-capped flows, cap-only (zero-resource) flows,
// instant (zero-byte) flows, stale/recycled FlowId detection, and byte
// conservation through the lazy per-resource counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace octo {
namespace {

using sim::FlowId;
using sim::ResourceId;
using sim::Simulation;

// Deterministic LCG (Numerical Recipes), same family as the benches.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  // Uniform in [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

// Asserts every live flow's production rate equals the oracle's, with
// exact (bitwise) double equality.
void ExpectRatesMatchOracle(Simulation& sim, const std::vector<FlowId>& live) {
  std::vector<std::pair<FlowId, double>> oracle = sim.NaiveRatesForTest();
  std::map<FlowId, double> by_id(oracle.begin(), oracle.end());
  for (FlowId id : live) {
    auto it = by_id.find(id);
    ASSERT_NE(it, by_id.end()) << "live flow " << id << " missing from oracle";
    double got = sim.FlowRate(id);
    // EXPECT_EQ on doubles is exact comparison — the contract is
    // bit-identical rates, not rates-within-epsilon.
    EXPECT_EQ(got, it->second) << "rate mismatch for flow " << id;
  }
  EXPECT_EQ(by_id.size(), live.size())
      << "oracle sees a different live-flow population";
}

struct Churn {
  // Topology scale. A shared backbone resource keeps a large fraction
  // of flows in one connected component so the worklist (large-
  // component) solver path is exercised, not just the reference scans.
  int racks = 4;
  int workers_per_rack = 4;
  int max_flows = 120;
  int steps = 260;
  int prefill = 0;  // pipeline flows started up-front, before churning
  uint64_t seed = 1;
};

void RunChurn(const Churn& cfg) {
  Rng rng(cfg.seed);
  Simulation sim;

  std::vector<ResourceId> disks, nics;
  for (int rk = 0; rk < cfg.racks; ++rk) {
    for (int w = 0; w < cfg.workers_per_rack; ++w) {
      std::string p = "r" + std::to_string(rk) + "w" + std::to_string(w);
      // Coarse capacity grid: collisions between share values happen
      // through exact ties (equal capacities, equal counts), the case
      // the slack window must batch identically in both solvers.
      disks.push_back(sim.AddResource(p + ":disk", 50e6 * (1 + rng.Below(4))));
      nics.push_back(sim.AddResource(p + ":nic", 250e6 * (1 + rng.Below(3))));
    }
  }
  ResourceId core = sim.AddResource("core", 2e9);

  struct Live {
    FlowId id = -1;
    bool done = false;
  };
  // Completion callbacks mark entries done; capturing the vector by
  // reference is safe (the vector object is stable even as it grows).
  std::vector<Live> flows;
  flows.reserve(static_cast<size_t>(cfg.steps) + 8);

  std::vector<FlowId> retired;  // completed or cancelled ids (stale)
  int workers = cfg.racks * cfg.workers_per_rack;

  auto live_ids = [&] {
    std::vector<FlowId> out;
    for (const Live& l : flows) {
      if (!l.done && l.id >= 0) out.push_back(l.id);
    }
    return out;
  };

  // Pre-fill with long pipeline flows so the backbone component starts
  // (and stays) well above the small-component solver cutoff.
  for (int i = 0; i < cfg.prefill; ++i) {
    int src = static_cast<int>(rng.Below(workers));
    int dst = static_cast<int>(rng.Below(workers));
    size_t idx = flows.size();
    flows.push_back(Live{});
    flows[idx].id = sim.StartFlow(
        1e9 + 1e6 * static_cast<double>(rng.Below(256)),
        {nics[src], nics[dst], disks[dst], core},
        [&flows, idx] { flows[idx].done = true; },
        (rng.Below(3) == 0) ? 40e6 : 0.0);
  }
  ExpectRatesMatchOracle(sim, live_ids());

  int max_live = 0;
  for (int step = 0; step < cfg.steps; ++step) {
    int live_count = 0;
    for (const Live& l : flows) live_count += l.done ? 0 : 1;
    max_live = std::max(max_live, live_count);
    uint64_t op = rng.Below(10);
    if (live_count >= cfg.max_flows) op = 9;  // at the cap: advance/drain

    if (op <= 5) {
      // Start a flow: a replication-pipeline-shaped resource set.
      int src = static_cast<int>(rng.Below(workers));
      int dst = static_cast<int>(rng.Below(workers));
      std::vector<ResourceId> rs;
      uint64_t shape = rng.Below(8);
      if (shape == 0) {
        // Cap-only flow (no resources): rate pinned at its cap.
      } else if (shape <= 3) {
        rs = {disks[src]};  // local write
      } else {
        rs = {nics[src], nics[dst], disks[dst], core};  // pipeline
        if (shape == 7) rs.push_back(disks[src]);       // + local spill
      }
      double bytes = (rng.Below(20) == 0)
                         ? 0.0  // instant flow: completes via timer
                         : 1e6 * static_cast<double>(1 + rng.Below(64));
      double cap = (rng.Below(3) == 0)
                       ? 20e6 * static_cast<double>(1 + rng.Below(8))
                       : 0.0;
      if (rs.empty() && cap == 0) cap = 25e6;  // keep it a real flow
      size_t idx = flows.size();
      flows.push_back(Live{});
      FlowId id = sim.StartFlow(
          bytes, rs, [&flows, idx] { flows[idx].done = true; }, cap);
      flows[idx].id = id;
      if (id < 0) flows[idx].done = true;  // instant: completes as timer
      if (!rs.empty() && bytes > 0 && cap == 0) {
        // A freshly started, uncapped flow crossing resources must get
        // a positive share immediately (queries flush the deferred
        // solve).
        EXPECT_GT(sim.FlowRate(id), 0) << "fresh flow has no rate";
      }
    } else if (op == 6 && !live_ids().empty()) {
      // Cancel a random live flow.
      std::vector<FlowId> ids = live_ids();
      FlowId victim = ids[rng.Below(ids.size())];
      sim.CancelFlow(victim);
      for (Live& l : flows) {
        if (l.id == victim) l.done = true;
      }
      retired.push_back(victim);
    } else if (op == 7 && !retired.empty()) {
      // Stale / recycled ids must be inert: rate 0, cancel is a no-op.
      FlowId stale = retired[rng.Below(retired.size())];
      EXPECT_EQ(sim.FlowRate(stale), 0.0);
      sim.CancelFlow(stale);
    } else {
      // Advance virtual time; some flows complete and fire callbacks.
      sim.RunUntil(sim.now() + 0.02 * static_cast<double>(1 + rng.Below(5)));
    }

    ExpectRatesMatchOracle(sim, live_ids());
    if (::testing::Test::HasFatalFailure()) return;
  }

  // The point of the exercise is sustained concurrency: the churn must
  // actually have kept a crowd of flows in flight.
  EXPECT_GT(max_live, cfg.prefill * 3 / 4 + cfg.max_flows / 4)
      << "churn never built up load";

  // Drain; every remaining flow completes.
  sim.RunUntilIdle();
  for (const Live& l : flows) {
    EXPECT_TRUE(l.done || sim.FlowRate(l.id) == 0.0);
  }
  EXPECT_EQ(sim.num_active_flows(), 0);
}

TEST(SimPropertyTest, RandomChurnMatchesNaiveOracleBitwise) {
  for (uint64_t seed : {1ull, 7ull, 0xdecafbadull}) {
    Churn cfg;
    cfg.seed = seed;
    RunChurn(cfg);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SimPropertyTest, LargeSingleComponentMatchesOracle) {
  // Everything crosses one backbone: one connected component well above
  // the small-component cutoff, so the share-heap worklist solver (not
  // the reference scan) produces every rate — and must match the
  // oracle's reference scans bitwise.
  Churn cfg;
  cfg.racks = 6;
  cfg.workers_per_rack = 6;
  cfg.max_flows = 220;
  cfg.steps = 200;
  cfg.prefill = 100;
  cfg.seed = 42;
  RunChurn(cfg);
}

TEST(SimPropertyTest, CapOnlyAndInstantFlows) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);

  // Cap-only flow: rate equals its cap, independent of any resource.
  FlowId cap_only = sim.StartFlow(50.0, {}, nullptr, 5.0);
  EXPECT_EQ(sim.FlowRate(cap_only), 5.0);

  // Capped flow on a shared resource: cap binds below the fair share.
  FlowId capped = sim.StartFlow(100.0, {r}, nullptr, 10.0);
  FlowId open = sim.StartFlow(1000.0, {r}, nullptr);
  EXPECT_EQ(sim.FlowRate(capped), 10.0);
  EXPECT_EQ(sim.FlowRate(open), 90.0);

  // Instant flow: completes via the timer path with a negative id.
  bool instant_done = false;
  FlowId instant = sim.StartFlow(0.0, {r}, [&] { instant_done = true; });
  EXPECT_LT(instant, 0);
  EXPECT_EQ(sim.FlowRate(instant), 0.0);

  ExpectRatesMatchOracle(sim, {cap_only, capped, open});
  sim.RunUntil(sim.now() + 1e-9);
  EXPECT_TRUE(instant_done);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.num_active_flows(), 0);
}

TEST(SimPropertyTest, RecycledSlotGetsFreshGeneration) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  FlowId a = sim.StartFlow(100.0, {r});
  sim.CancelFlow(a);
  // The slab recycles the slot LIFO; the old id must not alias the new
  // tenant.
  FlowId b = sim.StartFlow(100.0, {r});
  EXPECT_NE(a, b);
  EXPECT_EQ(sim.FlowRate(a), 0.0);
  EXPECT_EQ(sim.FlowRate(b), 100.0);
  sim.CancelFlow(a);  // stale cancel must not touch b
  EXPECT_EQ(sim.FlowRate(b), 100.0);
}

TEST(SimPropertyTest, BytesConservedThroughLazyCounters) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  double bytes[] = {150.0, 400.0, 50.0, 275.0};
  double total = 0;
  for (double b : bytes) {
    sim.StartFlow(b, {r});
    total += b;
  }
  sim.RunUntilIdle();
  // Every byte of every flow crossed the single resource; the lazily
  // integrated per-resource counter must account for all of them.
  EXPECT_NEAR(sim.ResourceBytesTransferred(r), total, 1e-6 * total);
}

}  // namespace
}  // namespace octo
