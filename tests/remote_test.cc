// Tests for remote storage: the external store stand-in, the stand-alone
// mount (read-through caching, warm, evict, unified listing), and the
// integrated remote tier.

#include <gtest/gtest.h>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/units.h"
#include "remote/external_store.h"
#include "remote/remote_tier.h"
#include "remote/standalone_mount.h"

namespace octo {
namespace {

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 2;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  MediumSpec ssd{kSsdTier, MediaType::kSsd, 128 * kMiB, FromMBps(340),
                 FromMBps(420)};
  spec.media_per_worker = {ssd, hdd};
  return spec;
}

// ---------------------------------------------------------------------------
// ExternalStore

TEST(ExternalStoreTest, ObjectCrud) {
  ExternalStore store;
  ASSERT_TRUE(store.PutObject("/a/x", "data").ok());
  EXPECT_TRUE(store.Exists("/a/x"));
  EXPECT_EQ(*store.GetObject("/a/x"), "data");
  EXPECT_EQ(*store.Size("/a/x"), 4);
  EXPECT_TRUE(store.GetObject("/a/y").status().IsNotFound());
  ASSERT_TRUE(store.DeleteObject("/a/x").ok());
  EXPECT_TRUE(store.DeleteObject("/a/x").IsNotFound());
}

TEST(ExternalStoreTest, ListByPrefixAndTotals) {
  ExternalStore store;
  ASSERT_TRUE(store.PutObject("/a/1", "xx").ok());
  ASSERT_TRUE(store.PutObject("/a/2", "yyy").ok());
  ASSERT_TRUE(store.PutObject("/b/3", "z").ok());
  EXPECT_EQ(store.List("/a"), (std::vector<std::string>{"/a/1", "/a/2"}));
  EXPECT_EQ(store.List(""), (std::vector<std::string>{"/a/1", "/a/2",
                                                      "/b/3"}));
  EXPECT_EQ(store.NumObjects(), 3);
  EXPECT_EQ(store.TotalBytes(), 6);
}

// ---------------------------------------------------------------------------
// StandaloneMount

class StandaloneMountTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(SmallSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
    ASSERT_TRUE(store_.PutObject("/logs/day1", std::string(1000, 'a')).ok());
    ASSERT_TRUE(store_.PutObject("/logs/day2", std::string(2000, 'b')).ok());
    CreateOptions cache;
    cache.rep_vector = ReplicationVector::Of(0, 1, 1);
    cache.block_size = kMiB;
    mount_ = std::make_unique<StandaloneMount>(fs_.get(), &store_, "/remote",
                                               cache);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
  ExternalStore store_;
  std::unique_ptr<StandaloneMount> mount_;
};

TEST_F(StandaloneMountTest, ReadThroughCaches) {
  EXPECT_FALSE(mount_->IsCached("/logs/day1"));
  auto first = mount_->Read("/logs/day1");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 1000u);
  EXPECT_TRUE(mount_->IsCached("/logs/day1"));
  EXPECT_EQ(mount_->cache_misses(), 1);
  auto second = mount_->Read("/logs/day1");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(mount_->cache_hits(), 1);
  // The cached copy lives inside the OctopusFS namespace.
  EXPECT_TRUE(fs_->Exists("/remote/logs/day1"));
}

TEST_F(StandaloneMountTest, MissingObjectIsNotFound) {
  EXPECT_TRUE(mount_->Read("/logs/none").status().IsNotFound());
}

TEST_F(StandaloneMountTest, WarmUsesRequestedVector) {
  ASSERT_TRUE(
      mount_->Warm("/logs/day2", ReplicationVector::Of(0, 2, 0)).ok());
  EXPECT_TRUE(mount_->IsCached("/logs/day2"));
  auto located = fs_->GetFileBlockLocations("/remote/logs/day2", 0, 2000);
  ASSERT_TRUE(located.ok());
  for (const PlacedReplica& replica : (*located)[0].locations) {
    EXPECT_EQ(replica.tier, kSsdTier);
  }
  // Warming again is a no-op.
  ASSERT_TRUE(
      mount_->Warm("/logs/day2", ReplicationVector::Of(0, 2, 0)).ok());
}

TEST_F(StandaloneMountTest, EvictDropsOnlyTheCachedCopy) {
  ASSERT_TRUE(mount_->Read("/logs/day1").ok());
  ASSERT_TRUE(mount_->Evict("/logs/day1").ok());
  EXPECT_FALSE(mount_->IsCached("/logs/day1"));
  EXPECT_TRUE(store_.Exists("/logs/day1"));
  // Re-read repopulates.
  ASSERT_TRUE(mount_->Read("/logs/day1").ok());
  EXPECT_TRUE(mount_->IsCached("/logs/day1"));
}

TEST_F(StandaloneMountTest, UnifiedListingMergesBothSides) {
  ASSERT_TRUE(mount_->Read("/logs/day1").ok());
  auto listing = mount_->List("/logs");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(*listing,
            (std::vector<std::string>{"/logs/day1", "/logs/day2"}));
}

// ---------------------------------------------------------------------------
// Integrated remote tier

TEST(RemoteTierTest, AttachesSharedMediaOnAllWorkers) {
  auto cluster = Cluster::Create(SmallSpec());
  ASSERT_TRUE(cluster.ok());
  RemoteTierOptions options;
  options.capacity_bytes = 4 * kGiB;
  options.write_bps = FromMBps(200);
  options.read_bps = FromMBps(250);
  ASSERT_TRUE(AttachRemoteTier(cluster->get(), options).ok());

  const ClusterState& state = (*cluster)->master()->cluster_state();
  EXPECT_EQ(state.NumActiveTiers(), 3);  // ssd, hdd, remote
  int remote_media = 0;
  for (const auto& [id, m] : state.media()) {
    if (m.tier == kRemoteTier) {
      ++remote_media;
      EXPECT_EQ(m.capacity_bytes, kGiB);  // 4 GiB / 4 workers
    }
  }
  EXPECT_EQ(remote_media, 4);
}

TEST(RemoteTierTest, FilesCanPinReplicasOnRemote) {
  auto cluster = Cluster::Create(SmallSpec());
  ASSERT_TRUE(cluster.ok());
  RemoteTierOptions options;
  options.capacity_bytes = 4 * kGiB;
  options.write_bps = FromMBps(200);
  options.read_bps = FromMBps(250);
  ASSERT_TRUE(AttachRemoteTier(cluster->get(), options).ok());

  FileSystem fs(cluster->get(), NetworkLocation("rack0", "node0"));
  CreateOptions create;
  create.rep_vector = ReplicationVector::Of(0, 0, 1, /*remote=*/1);
  create.block_size = kMiB;
  std::string data(256 * 1024, 'r');
  ASSERT_TRUE(fs.WriteFile("/with-remote", data, create).ok());
  auto located = fs.GetFileBlockLocations("/with-remote", 0, data.size());
  ASSERT_TRUE(located.ok());
  std::multiset<TierId> tiers;
  for (const PlacedReplica& r : (*located)[0].locations) {
    tiers.insert(r.tier);
  }
  EXPECT_EQ(tiers, (std::multiset<TierId>{kHddTier, kRemoteTier}));
  EXPECT_EQ(*fs.ReadFile("/with-remote"), data);
}

TEST(RemoteTierTest, RejectsBadOptions) {
  auto cluster = Cluster::Create(SmallSpec());
  ASSERT_TRUE(cluster.ok());
  RemoteTierOptions bad;
  EXPECT_TRUE(AttachRemoteTier(cluster->get(), bad).IsInvalidArgument());
}

}  // namespace
}  // namespace octo
