// Client-level API tests complementing the end-to-end suite in
// client_integration_test.cc: namespace operations through FileSystem,
// stream semantics, block-location ranges, overwrite, permissions, and
// the backwards-compatible create API.

#include <gtest/gtest.h>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec TinySpec(bool permissions = false) {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 2;
  spec.master.enable_permissions = permissions;
  MediumSpec memory{kMemoryTier, MediaType::kMemory, 16 * kMiB,
                    FromMBps(1900), FromMBps(3200)};
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {memory, hdd, hdd};
  return spec;
}

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(TinySpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
  }

  CreateOptions SmallBlocks() {
    CreateOptions options;
    options.block_size = 1 * kMiB;
    return options;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(ClientTest, NamespaceOperations) {
  ASSERT_TRUE(fs_->Mkdirs("/a/b").ok());
  EXPECT_TRUE(fs_->Exists("/a/b"));
  ASSERT_TRUE(fs_->WriteFile("/a/b/f", "hello", SmallBlocks()).ok());
  auto listing = fs_->ListDirectory("/a/b");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].path, "/a/b/f");
  ASSERT_TRUE(fs_->Rename("/a/b/f", "/a/g").ok());
  EXPECT_FALSE(fs_->Exists("/a/b/f"));
  EXPECT_EQ(*fs_->ReadFile("/a/g"), "hello");
  ASSERT_TRUE(fs_->Delete("/a", /*recursive=*/true).ok());
  EXPECT_FALSE(fs_->Exists("/a"));
}

TEST_F(ClientTest, DeleteNonRecursiveOnPopulatedDirFails) {
  ASSERT_TRUE(fs_->WriteFile("/d/f", "x", SmallBlocks()).ok());
  EXPECT_TRUE(fs_->Delete("/d").IsFailedPrecondition());
}

TEST_F(ClientTest, OverwriteSemantics) {
  ASSERT_TRUE(fs_->WriteFile("/f", "first", SmallBlocks()).ok());
  // Without overwrite: AlreadyExists.
  EXPECT_TRUE(fs_->WriteFile("/f", "second", SmallBlocks())
                  .IsAlreadyExists());
  CreateOptions overwrite = SmallBlocks();
  overwrite.overwrite = true;
  ASSERT_TRUE(fs_->WriteFile("/f", "second", overwrite).ok());
  EXPECT_EQ(*fs_->ReadFile("/f"), "second");
  // Old blocks were invalidated on the workers.
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  int64_t total_blocks = 0;
  for (WorkerId id : cluster_->worker_ids()) {
    for (auto& [m, blocks] : cluster_->worker(id)->BuildBlockReport()) {
      total_blocks += static_cast<int64_t>(blocks.size());
    }
  }
  EXPECT_EQ(total_blocks, 3);  // exactly one block x 3 replicas
}

TEST_F(ClientTest, WriterStreamsAcrossBlockBoundaries) {
  auto writer = fs_->Create("/stream", SmallBlocks());
  ASSERT_TRUE(writer.ok());
  std::string chunk(700 * 1024, 'c');  // 0.7 MiB chunks, 1 MiB blocks
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Write(chunk).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ((*writer)->bytes_written(), 5 * 700 * 1024);
  auto status = fs_->GetFileStatus("/stream");
  EXPECT_EQ(status->length, 5 * 700 * 1024);
  auto locations = fs_->GetFileBlockLocations("/stream", 0, status->length);
  EXPECT_EQ(locations->size(), 4u);  // ceil(3.5 MiB / 1 MiB)
}

TEST_F(ClientTest, WriteAfterCloseFails) {
  auto writer = fs_->Create("/f", SmallBlocks());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE((*writer)->Write("late").IsFailedPrecondition());
  EXPECT_TRUE((*writer)->Close().ok());  // double close is a no-op
}

TEST_F(ClientTest, ConcurrentCreateSamePathBlockedByLease) {
  auto w1 = fs_->Create("/contended", SmallBlocks());
  ASSERT_TRUE(w1.ok());
  FileSystem other(cluster_.get(), NetworkLocation("rack1", "node1"));
  CreateOptions overwrite = SmallBlocks();
  overwrite.overwrite = true;
  EXPECT_TRUE(other.Create("/contended", overwrite).status()
                  .IsAlreadyExists());
}

TEST_F(ClientTest, BlockLocationRangeFiltering) {
  std::string data(3 * kMiB, 'r');
  ASSERT_TRUE(fs_->WriteFile("/ranged", data, SmallBlocks()).ok());
  // Only the middle block overlaps [1.2 MiB, 1.8 MiB).
  auto middle = fs_->GetFileBlockLocations("/ranged", kMiB + 200 * 1024,
                                           600 * 1024);
  ASSERT_TRUE(middle.ok());
  ASSERT_EQ(middle->size(), 1u);
  EXPECT_EQ((*middle)[0].offset, kMiB);
  // A range spanning two blocks returns both.
  auto spanning = fs_->GetFileBlockLocations("/ranged", kMiB - 10, 20);
  EXPECT_EQ(spanning->size(), 2u);
  // Negative inputs rejected.
  EXPECT_TRUE(
      fs_->GetFileBlockLocations("/ranged", -1, 10).status()
          .IsInvalidArgument());
}

TEST_F(ClientTest, ReaderSeekAndSequentialReads) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += std::to_string(i) + ",";
  ASSERT_TRUE(fs_->WriteFile("/seek", data, SmallBlocks()).ok());
  auto reader = fs_->Open("/seek");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->length(), static_cast<int64_t>(data.size()));
  auto first = (*reader)->Read(10);
  EXPECT_EQ(*first, data.substr(0, 10));
  EXPECT_EQ((*reader)->Tell(), 10);
  ASSERT_TRUE((*reader)->Seek(100).ok());
  auto at100 = (*reader)->Read(5);
  EXPECT_EQ(*at100, data.substr(100, 5));
  EXPECT_TRUE((*reader)->Seek(-1).IsInvalidArgument());
  EXPECT_TRUE((*reader)->Seek(data.size() + 1).IsInvalidArgument());
  ASSERT_TRUE((*reader)->Seek(0).ok());
  EXPECT_EQ(*(*reader)->ReadAll(), data);
}

TEST_F(ClientTest, OpenDirectoryOrMissingFails) {
  ASSERT_TRUE(fs_->Mkdirs("/dir").ok());
  EXPECT_TRUE(fs_->Open("/dir").status().IsInvalidArgument());
  EXPECT_TRUE(fs_->Open("/missing").status().IsNotFound());
  EXPECT_TRUE(fs_->ReadFile("/missing").status().IsNotFound());
}

TEST_F(ClientTest, CreateCompatMapsReplicationToU) {
  auto writer = fs_->CreateCompat("/compat", /*replication=*/2, kMiB);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write("legacy-api").ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto status = fs_->GetFileStatus("/compat");
  EXPECT_EQ(status->rep_vector, ReplicationVector::OfTotal(2));
  auto located = fs_->GetFileBlockLocations("/compat", 0, 10);
  EXPECT_EQ((*located)[0].locations.size(), 2u);
}

TEST_F(ClientTest, AppendAddsBlocksToExistingFile) {
  ASSERT_TRUE(fs_->WriteFile("/log", "first-batch|", SmallBlocks()).ok());
  auto writer = fs_->Append("/log");
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Write("second-batch").ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ(*fs_->ReadFile("/log"), "first-batch|second-batch");
  // Block-aligned append: the new data started a fresh block.
  auto status = fs_->GetFileStatus("/log");
  auto located = fs_->GetFileBlockLocations("/log", 0, status->length);
  EXPECT_EQ(located->size(), 2u);
}

TEST_F(ClientTest, AppendRespectsLeasesAndValidation) {
  ASSERT_TRUE(fs_->WriteFile("/log", "data", SmallBlocks()).ok());
  auto w1 = fs_->Append("/log");
  ASSERT_TRUE(w1.ok());
  // Another client cannot append while the lease is held.
  FileSystem other(cluster_.get(), NetworkLocation("rack1", "node1"));
  EXPECT_TRUE(other.Append("/log").status().IsAlreadyExists());
  ASSERT_TRUE((*w1)->Close().ok());
  // Directories and missing files are rejected.
  ASSERT_TRUE(fs_->Mkdirs("/dir").ok());
  EXPECT_TRUE(fs_->Append("/dir").status().IsInvalidArgument());
  EXPECT_TRUE(fs_->Append("/missing").status().IsNotFound());
}

TEST_F(ClientTest, AppendSurvivesJournalReplay) {
  ASSERT_TRUE(fs_->WriteFile("/log", "abc", SmallBlocks()).ok());
  auto writer = fs_->Append("/log");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write("def").ok());
  ASSERT_TRUE((*writer)->Close().ok());
  // Replaying the journal reproduces the appended file's metadata.
  NamespaceTree replayed(cluster_->master()->clock());
  ASSERT_TRUE(EditLog::Replay(cluster_->master()->edit_log()->entries(), 0,
                              &replayed)
                  .ok());
  UserContext ctx;
  auto status = replayed.GetFileStatus("/log", ctx);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->length, 6);
  EXPECT_FALSE(status->under_construction);
  EXPECT_EQ(replayed.GetBlocks("/log")->size(), 2u);
}

TEST_F(ClientTest, EmptyFileHasNoBlocks) {
  ASSERT_TRUE(fs_->WriteFile("/empty", "", SmallBlocks()).ok());
  auto status = fs_->GetFileStatus("/empty");
  EXPECT_EQ(status->length, 0);
  EXPECT_EQ(*fs_->ReadFile("/empty"), "");
  EXPECT_TRUE(fs_->GetFileBlockLocations("/empty", 0, 100)->empty());
}

TEST_F(ClientTest, PermissionsFlowThroughClient) {
  auto cluster = Cluster::Create(TinySpec(/*permissions=*/true));
  ASSERT_TRUE(cluster.ok());
  FileSystem admin(cluster->get(), NetworkLocation("rack0", "node0"),
                   UserContext{"root", {}});
  ASSERT_TRUE(admin.Mkdirs("/private").ok());
  FileSystem guest(cluster->get(), NetworkLocation("rack0", "node1"),
                   UserContext{"guest", {}});
  EXPECT_TRUE(guest.WriteFile("/private/f", "x", CreateOptions{})
                  .IsPermissionDenied());
}

}  // namespace
}  // namespace octo
