// Unit tests for the storage substrate: CRC-32C, block stores (memory and
// disk), media types.

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/block_store.h"
#include "storage/checksum.h"
#include "storage/media_type.h"

namespace octo {
namespace {

// ---------------------------------------------------------------------------
// CRC-32C

TEST(ChecksumTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("a", 1), 0xC1D04330u);
}

TEST(ChecksumTest, SensitiveToSingleBitFlips) {
  std::string data(1024, 'x');
  uint32_t base = Crc32c(data);
  data[512] ^= 1;
  EXPECT_NE(Crc32c(data), base);
}

// ---------------------------------------------------------------------------
// Block stores (shared behaviours, parameterized over implementations)

enum class StoreKind { kMemory, kDisk };

class BlockStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kMemory) {
      store_ = std::make_unique<MemoryBlockStore>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("octo_store_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      auto opened = DiskBlockStore::Open(dir_.string());
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = std::move(opened).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<BlockStore> store_;
  std::filesystem::path dir_;
};

TEST_P(BlockStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put(1, "hello world").ok());
  auto data = store_->Get(1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello world");
}

TEST_P(BlockStoreTest, GetMissingIsNotFound) {
  EXPECT_TRUE(store_->Get(99).status().IsNotFound());
}

TEST_P(BlockStoreTest, PutReplacesAndAdjustsUsage) {
  ASSERT_TRUE(store_->Put(1, std::string(100, 'a')).ok());
  EXPECT_EQ(store_->UsedBytes(), 100);
  ASSERT_TRUE(store_->Put(1, std::string(40, 'b')).ok());
  EXPECT_EQ(store_->UsedBytes(), 40);
  EXPECT_EQ(store_->Get(1)->size(), 40u);
}

TEST_P(BlockStoreTest, DeleteRemovesAndFreesSpace) {
  ASSERT_TRUE(store_->Put(1, std::string(100, 'a')).ok());
  ASSERT_TRUE(store_->Put(2, std::string(50, 'b')).ok());
  ASSERT_TRUE(store_->Delete(1).ok());
  EXPECT_EQ(store_->UsedBytes(), 50);
  EXPECT_FALSE(store_->Contains(1));
  EXPECT_TRUE(store_->Delete(1).IsNotFound());
}

TEST_P(BlockStoreTest, ListReturnsSortedIds) {
  ASSERT_TRUE(store_->Put(5, "e").ok());
  ASSERT_TRUE(store_->Put(1, "a").ok());
  ASSERT_TRUE(store_->Put(3, "c").ok());
  EXPECT_EQ(store_->List(), (std::vector<BlockId>{1, 3, 5}));
}

TEST_P(BlockStoreTest, CorruptionDetectedOnRead) {
  ASSERT_TRUE(store_->Put(7, std::string(256, 'z')).ok());
  ASSERT_TRUE(store_->CorruptForTesting(7).ok());
  EXPECT_TRUE(store_->Get(7).status().IsCorruption());
}

TEST_P(BlockStoreTest, EmptyBlockSupported) {
  ASSERT_TRUE(store_->Put(1, "").ok());
  auto data = store_->Get(1);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->empty());
  EXPECT_EQ(store_->UsedBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Stores, BlockStoreTest,
                         ::testing::Values(StoreKind::kMemory,
                                           StoreKind::kDisk),
                         [](const auto& info) {
                           return info.param == StoreKind::kMemory ? "Memory"
                                                                   : "Disk";
                         });

// ---------------------------------------------------------------------------
// Disk-specific behaviour

TEST(DiskBlockStoreTest, SurvivesReopen) {
  auto dir = std::filesystem::temp_directory_path() / "octo_store_reopen";
  std::filesystem::remove_all(dir);
  {
    auto store = DiskBlockStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put(42, "persistent data").ok());
  }
  {
    auto store = DiskBlockStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->Contains(42));
    EXPECT_EQ((*store)->UsedBytes(), 15);
    auto data = (*store)->Get(42);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, "persistent data");
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Media types

TEST(MediaTypeTest, NamesRoundTrip) {
  for (MediaType t : {MediaType::kMemory, MediaType::kSsd, MediaType::kHdd,
                      MediaType::kRemote}) {
    auto parsed = ParseMediaType(MediaTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseMediaType("FLOPPY").ok());
}

TEST(MediaTypeTest, OnlyMemoryIsVolatile) {
  EXPECT_TRUE(IsVolatile(MediaType::kMemory));
  EXPECT_FALSE(IsVolatile(MediaType::kSsd));
  EXPECT_FALSE(IsVolatile(MediaType::kHdd));
  EXPECT_FALSE(IsVolatile(MediaType::kRemote));
}

}  // namespace
}  // namespace octo
