// Tests for the tier-aware rebalancer and the replica-move protocol.

#include <gtest/gtest.h>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "cluster/rebalancer.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

// One rack, 4 workers, single HDD each — imbalance is easy to create by
// writing with replication 1 through a single client (client-local first
// replica piles everything on one node).
ClusterSpec SkewSpec() {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 4;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 64 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd};
  return spec;
}

class RebalancerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(SkewSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
    // 24 MiB of single-replica files, all forced onto node0's disk.
    CreateOptions options;
    options.rep_vector = ReplicationVector::OfTotal(1);
    options.block_size = 4 * kMiB;
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(fs_->WriteFile("/skew/f" + std::to_string(i),
                                 std::string(4 * kMiB, 'x'), options)
                      .ok());
    }
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(RebalancerTest, DetectsAndFixesImbalance) {
  const ClusterState& state = cluster_->master()->cluster_state();
  double before = Rebalancer::TierImbalance(state, kHddTier);
  EXPECT_GT(before, 0.10);  // node0's disk is much fuller than the rest

  Rebalancer rebalancer(cluster_->master());
  auto report = rebalancer.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->moves_scheduled, 0);
  EXPECT_EQ(report->overfull_media, 1);

  // Execute the scheduled copies + invalidations; iterate passes until
  // the tier is balanced. Two pumps per pass: the first executes the
  // queued commands, the second delivers heartbeats reflecting them (a
  // worker heartbeats before executing the commands of the same round).
  for (int pass = 0; pass < 10; ++pass) {
    ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
    ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
    auto next = rebalancer.Run();
    ASSERT_TRUE(next.ok());
    if (next->moves_scheduled == 0) break;
  }

  double after = Rebalancer::TierImbalance(state, kHddTier);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.12);

  // All data remains intact and every block still has one replica.
  for (int i = 0; i < 6; ++i) {
    auto data = fs_->ReadFile("/skew/f" + std::to_string(i));
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    EXPECT_EQ(data->size(), 4u * kMiB);
  }
  cluster_->master()->block_manager().ForEach([](const BlockRecord& rec) {
    EXPECT_EQ(rec.locations.size(), 1u);
  });
}

TEST_F(RebalancerTest, BalancedClusterIsLeftAlone) {
  // Balance first.
  Rebalancer rebalancer(cluster_->master());
  for (int pass = 0; pass < 10; ++pass) {
    auto report = rebalancer.Run();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
    ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
    if (report->moves_scheduled == 0) break;
  }
  auto idle = rebalancer.Run();
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->moves_scheduled, 0);
  EXPECT_EQ(idle->overfull_media, 0);
}

TEST_F(RebalancerTest, MovesStayWithinTheTier) {
  // Add an (empty) SSD tier; rebalancing HDD data must not migrate there.
  ClusterSpec spec = SkewSpec();
  MediumSpec ssd{kSsdTier, MediaType::kSsd, 64 * kMiB, FromMBps(340),
                 FromMBps(420)};
  spec.media_per_worker.push_back(ssd);
  auto cluster = Cluster::Create(spec);
  ASSERT_TRUE(cluster.ok());
  FileSystem fs(cluster->get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.rep_vector = ReplicationVector::Of(0, 0, 1);
  options.block_size = 4 * kMiB;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fs.WriteFile("/skew/f" + std::to_string(i),
                             std::string(4 * kMiB, 'x'), options)
                    .ok());
  }
  Rebalancer rebalancer((*cluster)->master());
  for (int pass = 0; pass < 10; ++pass) {
    auto report = rebalancer.Run();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE((*cluster)->PumpHeartbeats().ok());
    ASSERT_TRUE((*cluster)->PumpHeartbeats().ok());
    if (report->moves_scheduled == 0) break;
  }
  (*cluster)->master()->block_manager().ForEach(
      [&](const BlockRecord& rec) {
        for (MediumId m : rec.locations) {
          EXPECT_EQ((*cluster)->master()->cluster_state().FindMedium(m)->tier,
                    kHddTier);
        }
      });
}

TEST_F(RebalancerTest, ScheduleReplicaMoveValidation) {
  Master* master = cluster_->master();
  EXPECT_TRUE(master->ScheduleReplicaMove(9999, 0).IsNotFound());
  BlockId block = kInvalidBlock;
  MediumId medium = kInvalidMedium;
  master->block_manager().ForEach([&](const BlockRecord& rec) {
    if (block == kInvalidBlock) {
      block = rec.id;
      medium = rec.locations[0];
    }
  });
  // Wrong source medium.
  EXPECT_TRUE(master->ScheduleReplicaMove(block, medium + 1).IsNotFound());
  // Valid move; a second concurrent move of the same block is refused.
  ASSERT_TRUE(master->ScheduleReplicaMove(block, medium).ok());
  EXPECT_TRUE(
      master->ScheduleReplicaMove(block, medium).IsAlreadyExists());
}

TEST_F(RebalancerTest, MoveOnlyInvalidatesSourceAfterCopyConfirms) {
  Master* master = cluster_->master();
  BlockId block = kInvalidBlock;
  MediumId source = kInvalidMedium;
  master->block_manager().ForEach([&](const BlockRecord& rec) {
    if (block == kInvalidBlock) {
      block = rec.id;
      source = rec.locations[0];
    }
  });
  ASSERT_TRUE(master->ScheduleReplicaMove(block, source).ok());
  // Until the copy confirms, the source replica is still registered (no
  // window with zero replicas).
  const BlockRecord* record = master->block_manager().Find(block);
  ASSERT_EQ(record->locations.size(), 1u);
  EXPECT_EQ(record->locations[0], source);
  // Execute the copy; afterwards the replica lives elsewhere.
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  record = master->block_manager().Find(block);
  ASSERT_EQ(record->locations.size(), 1u);
  EXPECT_NE(record->locations[0], source);
}

}  // namespace
}  // namespace octo
