// Property test for ClusterState's incrementally maintained aggregates
// and live-media indexes: after any randomized sequence of mutations
// (registrations, deaths, revivals, removals, heartbeat stat updates,
// connection and space churn), every O(1) aggregate must equal a naive
// full-scan recomputation over the public media/worker views, and the
// candidate indexes must enumerate exactly the live media in MediumId
// order. The sampled-placement per-(tier, rack) cells are held to the
// same standard: they must partition the live media by rack, and each
// cached BestInRack summary must equal a naive goodness maximum.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "core/cluster_state.h"
#include "core/objectives.h"

namespace octo {
namespace {

struct NaiveAggregates {
  int num_live_workers = 0;
  int num_racks = 0;
  int num_active_tiers = 0;
  int min_connections = 0;
  double max_remaining_fraction = 0;
  double tier_avg_write[8] = {0};
  double tier_avg_read[8] = {0};
  std::vector<MediumId> live;
  std::vector<MediumId> live_on_tier[8];
};

NaiveAggregates Recompute(const ClusterState& state) {
  NaiveAggregates n;
  std::set<std::string> racks;
  for (const auto& [id, w] : state.workers()) {
    if (!w.alive) continue;
    n.num_live_workers++;
    racks.insert(w.location.rack());
  }
  n.num_racks = static_cast<int>(racks.size());

  std::set<TierId> tiers;
  bool any = false;
  double write_sum[8] = {0}, read_sum[8] = {0};
  int count[8] = {0};
  for (const auto& [id, m] : state.media()) {
    if (!state.MediumLive(id)) continue;
    tiers.insert(m.tier);
    n.live.push_back(id);
    n.live_on_tier[m.tier & 7].push_back(id);
    if (!any || m.nr_connections < n.min_connections) {
      n.min_connections = m.nr_connections;
    }
    any = true;
    n.max_remaining_fraction =
        std::max(n.max_remaining_fraction, m.remaining_fraction());
    write_sum[m.tier & 7] += m.write_bps;
    read_sum[m.tier & 7] += m.read_bps;
    count[m.tier & 7]++;
  }
  n.num_active_tiers = static_cast<int>(tiers.size());
  for (int t = 0; t < 8; ++t) {
    n.tier_avg_write[t] = count[t] == 0 ? 0 : write_sum[t] / count[t];
    n.tier_avg_read[t] = count[t] == 0 ? 0 : read_sum[t] / count[t];
  }
  return n;
}

std::vector<MediumId> IdsOf(const ClusterState& state,
                            const std::vector<uint32_t>& slots) {
  std::vector<MediumId> out;
  out.reserve(slots.size());
  for (uint32_t slot : slots) out.push_back(state.media_slab()[slot].id);
  return out;
}

void CheckAgainstNaive(const ClusterState& state) {
  NaiveAggregates n = Recompute(state);
  EXPECT_EQ(state.NumLiveWorkers(), n.num_live_workers);
  EXPECT_EQ(state.NumRacks(), n.num_racks);
  EXPECT_EQ(state.NumActiveTiers(), n.num_active_tiers);
  EXPECT_EQ(state.MinMediumConnections(), n.min_connections);
  EXPECT_DOUBLE_EQ(state.MaxRemainingFraction(), n.max_remaining_fraction);
  for (TierId t = 0; t < 8; ++t) {
    EXPECT_DOUBLE_EQ(state.TierAvgWriteBps(t), n.tier_avg_write[t]) << int(t);
    EXPECT_DOUBLE_EQ(state.TierAvgReadBps(t), n.tier_avg_read[t]) << int(t);
  }
  EXPECT_EQ(IdsOf(state, state.live_media()), n.live);
  for (TierId t = 0; t < 8; ++t) {
    EXPECT_EQ(IdsOf(state, state.live_media_on_tier(t)), n.live_on_tier[t])
        << int(t);
  }
  // media_of_worker covers each worker's media exactly once, in id order.
  for (const auto& [wid, w] : state.workers()) {
    std::vector<MediumId> expect;
    for (const auto& [id, m] : state.media()) {
      if (m.worker == wid) expect.push_back(id);
    }
    EXPECT_EQ(state.MediaOnWorker(wid), expect) << wid;
  }
  // The sampled-placement rack cells partition the live media of each
  // tier by rack (order unspecified), and BestInRack reports a member
  // achieving the cell's true goodness maximum.
  for (TierId t = 0; t < 8; ++t) {
    for (int32_t rid = 0; rid < state.NumRackIds(); ++rid) {
      std::vector<MediumId> expect;
      double max_g = 0;
      for (const auto& [id, m] : state.media()) {
        if (m.tier != t || m.rack_id != rid || !state.MediumLive(id)) continue;
        expect.push_back(id);
        max_g = std::max(max_g, ScoreAccumulator::StaticGoodness(m));
      }
      std::vector<MediumId> cell = IdsOf(state, state.live_media_in_rack(t, rid));
      std::sort(cell.begin(), cell.end());
      EXPECT_EQ(cell, expect) << "tier " << int(t) << " rack " << rid;
      uint32_t best_slot = 0;
      double best_g = 0;
      bool has = state.BestInRack(t, rid, &best_slot, &best_g);
      EXPECT_EQ(has, !expect.empty()) << "tier " << int(t) << " rack " << rid;
      if (has) {
        const MediumInfo& bm = state.media_slab()[best_slot];
        EXPECT_TRUE(std::binary_search(cell.begin(), cell.end(), bm.id));
        EXPECT_DOUBLE_EQ(best_g, max_g) << "tier " << int(t) << " rack " << rid;
        EXPECT_DOUBLE_EQ(ScoreAccumulator::StaticGoodness(bm), max_g);
      }
    }
  }
}

TEST(ClusterStatePropertyTest, IncrementalAggregatesMatchFullRecompute) {
  for (uint64_t seed : {1u, 7u, 20170614u}) {
    Random rng(seed);
    ClusterState state;
    for (TierId t = 0; t < 3; ++t) {
      state.AddTier({t, "tier" + std::to_string(t), MediaType::kHdd});
    }
    std::vector<WorkerId> workers;
    std::vector<MediumId> media;
    WorkerId next_worker = 0;
    MediumId next_medium = 0;

    auto add_worker = [&] {
      WorkerInfo w;
      w.id = next_worker++;
      w.location =
          NetworkLocation("r" + std::to_string(w.id % 5),
                          "n" + std::to_string(w.id));
      w.alive = rng.Uniform(4) != 0;  // some register dead
      ASSERT_TRUE(state.AddWorker(w).ok());
      workers.push_back(w.id);
      int media_count = 1 + static_cast<int>(rng.Uniform(3));
      for (int j = 0; j < media_count; ++j) {
        MediumInfo m;
        m.id = next_medium++;
        m.worker = w.id;
        m.location = w.location;
        m.tier = static_cast<TierId>(rng.Uniform(3));
        m.type = m.tier == 0 ? MediaType::kMemory : MediaType::kHdd;
        m.capacity_bytes = static_cast<int64_t>(1 + rng.Uniform(64)) * kMiB;
        m.remaining_bytes = static_cast<int64_t>(rng.Uniform(m.capacity_bytes));
        m.nr_connections = static_cast<int>(rng.Uniform(6));
        m.write_bps = FromMBps(50 + static_cast<double>(rng.Uniform(400)));
        m.read_bps = FromMBps(80 + static_cast<double>(rng.Uniform(400)));
        ASSERT_TRUE(state.AddMedium(m).ok());
        media.push_back(m.id);
      }
    };

    for (int i = 0; i < 4; ++i) add_worker();

    const int kOps = 1500;
    for (int op = 0; op < kOps; ++op) {
      switch (rng.Uniform(10)) {
        case 0:
          add_worker();
          break;
        case 1:  // kill or revive a worker
          if (!workers.empty()) {
            WorkerId id = workers[rng.Uniform(workers.size())];
            const WorkerInfo* w = state.FindWorker(id);
            ASSERT_TRUE(state.SetWorkerAlive(id, !w->alive).ok());
          }
          break;
        case 2:  // decommission a worker and its media
          if (workers.size() > 2) {
            size_t k = rng.Uniform(workers.size());
            WorkerId id = workers[k];
            ASSERT_TRUE(state.RemoveWorker(id).ok());
            workers.erase(workers.begin() + k);
            std::erase_if(media, [&state](MediumId m) {
              return state.FindMedium(m) == nullptr;
            });
          }
          break;
        case 3:  // heartbeat stats replace remaining + connections
          if (!media.empty()) {
            MediumId id = media[rng.Uniform(media.size())];
            const MediumInfo* m = state.FindMedium(id);
            ASSERT_TRUE(state
                            .UpdateMediumStats(
                                id,
                                static_cast<int64_t>(
                                    rng.Uniform(m->capacity_bytes + 1)),
                                static_cast<int>(rng.Uniform(8)))
                            .ok());
          }
          break;
        case 4:  // re-profiled device rates
          if (!media.empty()) {
            MediumId id = media[rng.Uniform(media.size())];
            ASSERT_TRUE(
                state
                    .SetMediumRates(
                        id, FromMBps(50 + static_cast<double>(rng.Uniform(400))),
                        FromMBps(80 + static_cast<double>(rng.Uniform(400))))
                    .ok());
          }
          break;
        default:  // placement-storm churn: space + connection deltas
          if (!media.empty()) {
            MediumId id = media[rng.Uniform(media.size())];
            state.AddMediumConnections(id, rng.Uniform(2) == 0 ? 1 : -1);
            int64_t delta = static_cast<int64_t>(rng.Uniform(2 * kMiB)) - kMiB;
            // NoSpace (delta would overdraw) is a legal outcome here.
            Status st = state.AdjustMediumRemaining(id, delta);
            ASSERT_TRUE(st.ok() || st.IsNoSpace());
          }
          break;
      }
      if (op % 16 == 0) CheckAgainstNaive(state);
    }
    CheckAgainstNaive(state);
  }
}

}  // namespace
}  // namespace octo
