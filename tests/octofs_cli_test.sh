#!/bin/sh
# End-to-end test of the octofs CLI across separate process invocations:
# namespace + block data must persist via fsimage / edit log / disk-backed
# block stores, and setrep moves must survive a "restart".
set -e

OCTOFS="$1"
STATE=$(mktemp -d)
trap 'rm -rf "$STATE"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

"$OCTOFS" --state "$STATE" init >/dev/null

printf 'tiered storage works' > "$STATE/local.txt"
"$OCTOFS" --state "$STATE" mkdir /data
"$OCTOFS" --state "$STATE" put "$STATE/local.txt" /data/file.txt 1,0,2

# Read back in a fresh process.
OUT=$("$OCTOFS" --state "$STATE" cat /data/file.txt)
[ "$OUT" = "tiered storage works" ] || fail "cat mismatch: $OUT"

# Replication vector visible and correct.
"$OCTOFS" --state "$STATE" ls /data | grep -q '<1,0,2' \
  || fail "ls does not show the replication vector"

# Locations include one Memory and two HDD replicas.
LOC=$("$OCTOFS" --state "$STATE" locations /data/file.txt)
echo "$LOC" | grep -c 'Memory' | grep -qx 1 || fail "expected 1 memory replica"
echo "$LOC" | grep -c 'HDD' | grep -qx 2 || fail "expected 2 HDD replicas"

# Move the memory replica to SSD and verify in another fresh process.
"$OCTOFS" --state "$STATE" setrep /data/file.txt 0,1,2
LOC=$("$OCTOFS" --state "$STATE" locations /data/file.txt)
echo "$LOC" | grep -q 'SSD' || fail "expected an SSD replica after setrep"
echo "$LOC" | grep -q 'Memory' && fail "memory replica should be gone"

# Rename and delete.
"$OCTOFS" --state "$STATE" mv /data/file.txt /data/renamed.txt
OUT=$("$OCTOFS" --state "$STATE" cat /data/renamed.txt)
[ "$OUT" = "tiered storage works" ] || fail "cat after mv mismatch"
"$OCTOFS" --state "$STATE" rm /data/renamed.txt
"$OCTOFS" --state "$STATE" cat /data/renamed.txt 2>/dev/null \
  && fail "file should be gone"

# get writes the bytes to a local file.
"$OCTOFS" --state "$STATE" put "$STATE/local.txt" /data/again.txt
"$OCTOFS" --state "$STATE" get /data/again.txt "$STATE/out.txt"
cmp -s "$STATE/local.txt" "$STATE/out.txt" || fail "get round-trip mismatch"

# report runs and mentions the tiers.
"$OCTOFS" --state "$STATE" report | grep -q 'Memory' || fail "report"

echo "octofs CLI end-to-end: OK"
