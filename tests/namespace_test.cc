// Unit tests for the namespace service: path handling, the inode tree,
// renames, deletes, per-tier quotas, and permission enforcement.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "namespacefs/namespace_tree.h"
#include "namespacefs/path.h"

namespace octo {
namespace {

const UserContext kRoot{"root", {}};

// ---------------------------------------------------------------------------
// Paths

TEST(PathTest, NormalizeCanonicalizes) {
  EXPECT_EQ(*NormalizePath("/a/b"), "/a/b");
  EXPECT_EQ(*NormalizePath("/a//b/"), "/a/b");
  EXPECT_EQ(*NormalizePath("/"), "/");
  EXPECT_EQ(*NormalizePath("///"), "/");
}

TEST(PathTest, NormalizeRejectsBadPaths) {
  EXPECT_FALSE(NormalizePath("relative").ok());
  EXPECT_FALSE(NormalizePath("").ok());
  EXPECT_FALSE(NormalizePath("/a/./b").ok());
  EXPECT_FALSE(NormalizePath("/a/../b").ok());
  EXPECT_FALSE(NormalizePath("/a\tb").ok());
  EXPECT_FALSE(NormalizePath("/a\nb").ok());
}

TEST(PathTest, ParentAndBaseName) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(BaseName("/a/b/c"), "c");
  EXPECT_EQ(BaseName("/a"), "a");
  EXPECT_EQ(BaseName("/"), "");
}

TEST(PathTest, Components) {
  EXPECT_EQ(PathComponents("/a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(PathComponents("/").empty());
}

TEST(PathTest, IsSelfOrDescendant) {
  EXPECT_TRUE(IsSelfOrDescendant("/a", "/a"));
  EXPECT_TRUE(IsSelfOrDescendant("/a", "/a/b/c"));
  EXPECT_TRUE(IsSelfOrDescendant("/", "/anything"));
  EXPECT_FALSE(IsSelfOrDescendant("/a", "/ab"));  // prefix but not subtree
  EXPECT_FALSE(IsSelfOrDescendant("/a/b", "/a"));
}

// ---------------------------------------------------------------------------
// Tree basics

class NamespaceTreeTest : public ::testing::Test {
 protected:
  NamespaceTreeTest() : tree_(&clock_) {}

  Status CreateCompleteFile(const std::string& path,
                            const ReplicationVector& rv, int64_t length,
                            BlockId id = 0) {
    OCTO_RETURN_IF_ERROR(
        tree_.CreateFile(path, rv, kDefaultBlockSize, false, kRoot));
    if (length > 0) {
      OCTO_RETURN_IF_ERROR(tree_.AddBlock(
          path, BlockInfo{id != 0 ? id : next_block_++, length}));
    }
    return tree_.CompleteFile(path);
  }

  ManualClock clock_;
  NamespaceTree tree_;
  BlockId next_block_ = 100;
};

TEST_F(NamespaceTreeTest, MkdirsCreatesChain) {
  ASSERT_TRUE(tree_.Mkdirs("/a/b/c", kRoot).ok());
  EXPECT_TRUE(tree_.Exists("/a"));
  EXPECT_TRUE(tree_.Exists("/a/b"));
  EXPECT_TRUE(tree_.Exists("/a/b/c"));
  EXPECT_EQ(tree_.NumDirectories(), 3);
  // Idempotent.
  EXPECT_TRUE(tree_.Mkdirs("/a/b/c", kRoot).ok());
  EXPECT_EQ(tree_.NumDirectories(), 3);
}

TEST_F(NamespaceTreeTest, MkdirsOverFileFails) {
  ASSERT_TRUE(CreateCompleteFile("/a/file", ReplicationVector::OfTotal(1),
                                 10).ok());
  EXPECT_TRUE(tree_.Mkdirs("/a/file/sub", kRoot).IsAlreadyExists());
  EXPECT_TRUE(tree_.Mkdirs("/a/file", kRoot).IsAlreadyExists());
}

TEST_F(NamespaceTreeTest, CreateFileRequiresReplicas) {
  EXPECT_TRUE(tree_.CreateFile("/f", ReplicationVector(), kDefaultBlockSize,
                               false, kRoot)
                  .IsInvalidArgument());
  EXPECT_TRUE(tree_.CreateFile("/f", ReplicationVector::OfTotal(1), 0, false,
                               kRoot)
                  .IsInvalidArgument());
}

TEST_F(NamespaceTreeTest, CreateDuplicateWithoutOverwriteFails) {
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::OfTotal(3), 5).ok());
  EXPECT_TRUE(tree_.CreateFile("/f", ReplicationVector::OfTotal(3),
                               kDefaultBlockSize, false, kRoot)
                  .IsAlreadyExists());
}

TEST_F(NamespaceTreeTest, OverwriteReturnsReplacedBlocks) {
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::OfTotal(3), 50,
                                 /*id=*/777).ok());
  std::vector<BlockInfo> replaced;
  ASSERT_TRUE(tree_.CreateFile("/f", ReplicationVector::OfTotal(3),
                               kDefaultBlockSize, true, kRoot, &replaced)
                  .ok());
  ASSERT_EQ(replaced.size(), 1u);
  EXPECT_EQ(replaced[0].id, 777);
  EXPECT_EQ(tree_.NumFiles(), 1);
}

TEST_F(NamespaceTreeTest, AddBlockOnlyWhileUnderConstruction) {
  ASSERT_TRUE(tree_.CreateFile("/f", ReplicationVector::OfTotal(3),
                               kDefaultBlockSize, false, kRoot)
                  .ok());
  ASSERT_TRUE(tree_.AddBlock("/f", BlockInfo{1, 10}).ok());
  ASSERT_TRUE(tree_.CompleteFile("/f").ok());
  EXPECT_TRUE(tree_.AddBlock("/f", BlockInfo{2, 10}).IsFailedPrecondition());
  auto status = tree_.GetFileStatus("/f", kRoot);
  EXPECT_EQ(status->length, 10);
  EXPECT_FALSE(status->under_construction);
}

TEST_F(NamespaceTreeTest, GetFileStatusFields) {
  clock_.SetMicros(1234);
  ASSERT_TRUE(CreateCompleteFile("/dir/file", ReplicationVector::Of(1, 0, 2),
                                 100).ok());
  auto status = tree_.GetFileStatus("/dir/file", kRoot);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->path, "/dir/file");
  EXPECT_FALSE(status->is_dir);
  EXPECT_EQ(status->length, 100);
  EXPECT_EQ(status->rep_vector, ReplicationVector::Of(1, 0, 2));
  EXPECT_EQ(status->owner, "root");
  EXPECT_EQ(status->mtime_micros, 1234);
}

TEST_F(NamespaceTreeTest, ListDirectory) {
  ASSERT_TRUE(tree_.Mkdirs("/d/sub", kRoot).ok());
  ASSERT_TRUE(CreateCompleteFile("/d/f1", ReplicationVector::OfTotal(1),
                                 1).ok());
  ASSERT_TRUE(CreateCompleteFile("/d/f2", ReplicationVector::OfTotal(1),
                                 2).ok());
  auto listing = tree_.ListDirectory("/d", kRoot);
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 3u);
  EXPECT_EQ((*listing)[0].path, "/d/f1");
  EXPECT_EQ((*listing)[1].path, "/d/f2");
  EXPECT_EQ((*listing)[2].path, "/d/sub");
  EXPECT_TRUE((*listing)[2].is_dir);
}

TEST_F(NamespaceTreeTest, ListFileYieldsItself) {
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::OfTotal(1), 1).ok());
  auto listing = tree_.ListDirectory("/f", kRoot);
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].path, "/f");
}

// ---------------------------------------------------------------------------
// Rename

TEST_F(NamespaceTreeTest, RenameFile) {
  ASSERT_TRUE(CreateCompleteFile("/a/f", ReplicationVector::OfTotal(3),
                                 10).ok());
  ASSERT_TRUE(tree_.Mkdirs("/b", kRoot).ok());
  ASSERT_TRUE(tree_.Rename("/a/f", "/b/g", kRoot).ok());
  EXPECT_FALSE(tree_.Exists("/a/f"));
  EXPECT_TRUE(tree_.Exists("/b/g"));
  EXPECT_EQ(tree_.GetFileStatus("/b/g", kRoot)->length, 10);
}

TEST_F(NamespaceTreeTest, RenameDirectoryMovesSubtree) {
  ASSERT_TRUE(CreateCompleteFile("/a/x/f", ReplicationVector::OfTotal(3),
                                 10).ok());
  ASSERT_TRUE(tree_.Rename("/a", "/z", kRoot).ok());
  EXPECT_TRUE(tree_.Exists("/z/x/f"));
  EXPECT_FALSE(tree_.Exists("/a"));
}

TEST_F(NamespaceTreeTest, RenameRejectsBadCases) {
  ASSERT_TRUE(tree_.Mkdirs("/a/b", kRoot).ok());
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::OfTotal(1), 1).ok());
  // Into own subtree.
  EXPECT_TRUE(tree_.Rename("/a", "/a/b/c", kRoot).IsInvalidArgument());
  // Source missing.
  EXPECT_TRUE(tree_.Rename("/missing", "/x", kRoot).IsNotFound());
  // Destination exists.
  EXPECT_TRUE(tree_.Rename("/f", "/a", kRoot).IsAlreadyExists());
  // Destination parent missing.
  EXPECT_TRUE(tree_.Rename("/f", "/no/such/dir/f", kRoot).IsNotFound());
  // Root itself.
  EXPECT_TRUE(tree_.Rename("/", "/x", kRoot).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Delete

TEST_F(NamespaceTreeTest, DeleteFileReturnsBlocks) {
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::OfTotal(3), 10,
                                 /*id=*/55).ok());
  auto blocks = tree_.Delete("/f", false, kRoot);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ((*blocks)[0].id, 55);
  EXPECT_FALSE(tree_.Exists("/f"));
  EXPECT_EQ(tree_.NumFiles(), 0);
}

TEST_F(NamespaceTreeTest, DeleteNonEmptyDirNeedsRecursive) {
  ASSERT_TRUE(CreateCompleteFile("/d/f", ReplicationVector::OfTotal(1),
                                 1).ok());
  EXPECT_TRUE(tree_.Delete("/d", false, kRoot).status()
                  .IsFailedPrecondition());
  auto blocks = tree_.Delete("/d", true, kRoot);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 1u);
  EXPECT_EQ(tree_.NumDirectories(), 0);
  EXPECT_EQ(tree_.NumFiles(), 0);
}

TEST_F(NamespaceTreeTest, DeleteRootRejected) {
  EXPECT_TRUE(tree_.Delete("/", true, kRoot).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Replication vector changes

TEST_F(NamespaceTreeTest, SetReplicationVector) {
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::Of(1, 0, 2),
                                 100).ok());
  ASSERT_TRUE(tree_.SetReplicationVector("/f",
                                         ReplicationVector::Of(0, 1, 2),
                                         kRoot)
                  .ok());
  EXPECT_EQ(*tree_.GetReplicationVector("/f"),
            ReplicationVector::Of(0, 1, 2));
  // Dropping to zero replicas is rejected (delete the file instead).
  EXPECT_TRUE(tree_.SetReplicationVector("/f", ReplicationVector(), kRoot)
                  .IsInvalidArgument());
  // Directories have no replication vector.
  ASSERT_TRUE(tree_.Mkdirs("/d", kRoot).ok());
  EXPECT_TRUE(tree_.SetReplicationVector("/d",
                                         ReplicationVector::OfTotal(1), kRoot)
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Quotas

TEST_F(NamespaceTreeTest, TierQuotaEnforcedOnAddBlock) {
  ASSERT_TRUE(tree_.Mkdirs("/q", kRoot).ok());
  ASSERT_TRUE(tree_.SetQuota("/q", kMemoryTier, 100).ok());
  ASSERT_TRUE(tree_.CreateFile("/q/f", ReplicationVector::Of(1, 0, 2),
                               kDefaultBlockSize, false, kRoot)
                  .ok());
  // 80 bytes * 1 memory replica fits; another 30 would exceed 100.
  ASSERT_TRUE(tree_.AddBlock("/q/f", BlockInfo{1, 80}).ok());
  EXPECT_TRUE(tree_.AddBlock("/q/f", BlockInfo{2, 30}).IsQuotaExceeded());
  // HDD usage is unconstrained here.
  auto usage = tree_.GetQuotaUsage("/q");
  EXPECT_EQ(usage->usage[kMemoryTier], 80);
  EXPECT_EQ(usage->usage[kHddTier], 160);
  EXPECT_EQ(usage->quota[kMemoryTier], 100);
  EXPECT_EQ(usage->quota[kHddTier], -1);
}

TEST_F(NamespaceTreeTest, TotalSpaceQuotaCountsAllReplicas) {
  ASSERT_TRUE(tree_.Mkdirs("/q", kRoot).ok());
  ASSERT_TRUE(tree_.SetQuota("/q", kTotalSpaceSlot, 299).ok());
  ASSERT_TRUE(tree_.CreateFile("/q/f", ReplicationVector::OfTotal(3),
                               kDefaultBlockSize, false, kRoot)
                  .ok());
  // 3 replicas x 100 bytes = 300 > 299.
  EXPECT_TRUE(tree_.AddBlock("/q/f", BlockInfo{1, 100}).IsQuotaExceeded());
  ASSERT_TRUE(tree_.AddBlock("/q/f", BlockInfo{2, 99}).ok());
}

TEST_F(NamespaceTreeTest, QuotaFreedOnDelete) {
  ASSERT_TRUE(tree_.Mkdirs("/q", kRoot).ok());
  ASSERT_TRUE(tree_.SetQuota("/q", kTotalSpaceSlot, 300).ok());
  ASSERT_TRUE(CreateCompleteFile("/q/f", ReplicationVector::OfTotal(3),
                                 100).ok());
  ASSERT_TRUE(tree_.Delete("/q/f", false, kRoot).ok());
  EXPECT_EQ(tree_.GetQuotaUsage("/q")->usage[kTotalSpaceSlot], 0);
  // Space is available again.
  ASSERT_TRUE(CreateCompleteFile("/q/g", ReplicationVector::OfTotal(3),
                                 100).ok());
}

TEST_F(NamespaceTreeTest, SetReplicationChecksQuota) {
  ASSERT_TRUE(tree_.Mkdirs("/q", kRoot).ok());
  ASSERT_TRUE(tree_.SetQuota("/q", kMemoryTier, 50).ok());
  ASSERT_TRUE(CreateCompleteFile("/q/f", ReplicationVector::Of(0, 0, 3),
                                 100).ok());
  // Adding a memory replica needs 100 bytes of memory quota; only 50 exist.
  EXPECT_TRUE(tree_.SetReplicationVector("/q/f",
                                         ReplicationVector::Of(1, 0, 3),
                                         kRoot)
                  .IsQuotaExceeded());
  // The failure must not corrupt the charge: dropping to 2 HDD works.
  ASSERT_TRUE(tree_.SetReplicationVector("/q/f",
                                         ReplicationVector::Of(0, 0, 2),
                                         kRoot)
                  .ok());
  EXPECT_EQ(tree_.GetQuotaUsage("/q")->usage[kHddTier], 200);
}

TEST_F(NamespaceTreeTest, RenameMovesQuotaChargeAndRollsBack) {
  ASSERT_TRUE(tree_.Mkdirs("/src", kRoot).ok());
  ASSERT_TRUE(tree_.Mkdirs("/dst", kRoot).ok());
  ASSERT_TRUE(tree_.SetQuota("/dst", kTotalSpaceSlot, 100).ok());
  ASSERT_TRUE(CreateCompleteFile("/src/f", ReplicationVector::OfTotal(3),
                                 100).ok());
  // 300 bytes of charge exceed /dst's 100-byte quota: rename fails and the
  // file stays (with its charge) in /src.
  EXPECT_TRUE(tree_.Rename("/src/f", "/dst/f", kRoot).IsQuotaExceeded());
  EXPECT_TRUE(tree_.Exists("/src/f"));
  EXPECT_EQ(tree_.GetQuotaUsage("/src")->usage[kTotalSpaceSlot], 300);
  EXPECT_EQ(tree_.GetQuotaUsage("/dst")->usage[kTotalSpaceSlot], 0);
  // With a sufficient quota, the charge moves.
  ASSERT_TRUE(tree_.SetQuota("/dst", kTotalSpaceSlot, 1000).ok());
  ASSERT_TRUE(tree_.Rename("/src/f", "/dst/f", kRoot).ok());
  EXPECT_EQ(tree_.GetQuotaUsage("/src")->usage[kTotalSpaceSlot], 0);
  EXPECT_EQ(tree_.GetQuotaUsage("/dst")->usage[kTotalSpaceSlot], 300);
}

TEST_F(NamespaceTreeTest, QuotaOnFilesRejected) {
  ASSERT_TRUE(CreateCompleteFile("/f", ReplicationVector::OfTotal(1), 1).ok());
  EXPECT_TRUE(tree_.SetQuota("/f", 0, 100).IsInvalidArgument());
  EXPECT_TRUE(tree_.SetQuota("/missing", 0, 100).IsNotFound());
  ASSERT_TRUE(tree_.Mkdirs("/d", kRoot).ok());
  EXPECT_TRUE(tree_.SetQuota("/d", 9, 100).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Permissions

class PermissionsTest : public NamespaceTreeTest {
 protected:
  void SetUp() override {
    tree_.EnablePermissions(true);
    tree_.SetSuperuser("root");
    ASSERT_TRUE(tree_.Mkdirs("/home/alice", kRoot).ok());
    ASSERT_TRUE(tree_.SetOwner("/home/alice", "alice", "users", kRoot).ok());
    ASSERT_TRUE(tree_.SetMode("/home/alice", 0750, kRoot).ok());
  }

  UserContext alice_{"alice", {"users"}};
  UserContext bob_{"bob", {"users"}};     // group member
  UserContext eve_{"eve", {"guests"}};    // other
};

TEST_F(PermissionsTest, OwnerCanWriteOthersCannot) {
  EXPECT_TRUE(tree_.CreateFile("/home/alice/a", ReplicationVector::OfTotal(1),
                               kDefaultBlockSize, false, alice_)
                  .ok());
  EXPECT_TRUE(tree_.CreateFile("/home/alice/b", ReplicationVector::OfTotal(1),
                               kDefaultBlockSize, false, bob_)
                  .IsPermissionDenied());
  EXPECT_TRUE(tree_.Mkdirs("/home/alice/sub", bob_).IsPermissionDenied());
}

TEST_F(PermissionsTest, GroupCanListOtherCannotTraverse) {
  EXPECT_TRUE(tree_.ListDirectory("/home/alice", bob_).ok());
  EXPECT_TRUE(
      tree_.ListDirectory("/home/alice", eve_).status().IsPermissionDenied());
}

TEST_F(PermissionsTest, SuperuserBypassesEverything) {
  ASSERT_TRUE(tree_.SetMode("/home/alice", 0000, kRoot).ok());
  EXPECT_TRUE(tree_.ListDirectory("/home/alice", kRoot).ok());
  EXPECT_TRUE(tree_.CreateFile("/home/alice/root-file",
                               ReplicationVector::OfTotal(1),
                               kDefaultBlockSize, false, kRoot)
                  .ok());
}

TEST_F(PermissionsTest, ChownRestrictedToSuperuser) {
  EXPECT_TRUE(
      tree_.SetOwner("/home/alice", "eve", "guests", eve_)
          .IsPermissionDenied());
  EXPECT_TRUE(tree_.SetOwner("/home/alice", "bob", "", kRoot).ok());
}

TEST_F(PermissionsTest, ChmodOwnerOrSuperuser) {
  EXPECT_TRUE(tree_.SetMode("/home/alice", 0700, eve_).IsPermissionDenied());
  EXPECT_TRUE(tree_.SetMode("/home/alice", 0700, alice_).ok());
  EXPECT_EQ(tree_.GetFileStatus("/home/alice", kRoot)->mode, 0700);
}

TEST_F(PermissionsTest, DeleteNeedsParentWrite) {
  ASSERT_TRUE(tree_.CreateFile("/home/alice/f", ReplicationVector::OfTotal(1),
                               kDefaultBlockSize, false, alice_)
                  .ok());
  EXPECT_TRUE(
      tree_.Delete("/home/alice/f", false, bob_).status()
          .IsPermissionDenied());
  EXPECT_TRUE(tree_.Delete("/home/alice/f", false, alice_).ok());
}

// ---------------------------------------------------------------------------
// Visit

TEST_F(NamespaceTreeTest, VisitWalksPreorder) {
  ASSERT_TRUE(CreateCompleteFile("/a/f", ReplicationVector::OfTotal(3),
                                 10).ok());
  ASSERT_TRUE(tree_.Mkdirs("/b", kRoot).ok());
  std::vector<std::string> paths;
  tree_.Visit([&paths](const NamespaceTree::VisitEntry& e) {
    paths.push_back(e.status.path);
  });
  EXPECT_EQ(paths, (std::vector<std::string>{"/", "/a", "/a/f", "/b"}));
}

}  // namespace
}  // namespace octo
