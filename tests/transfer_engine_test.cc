// Unit tests of the TransferEngine's resource plans: which devices a
// pipeline/read/shuffle occupies, the timing that results, and the
// connection accounting feeding the policies.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "workload/transfer_engine.h"

namespace octo {
namespace {

using workload::TransferEngine;

// One rack, three workers, one device per tier; caps disabled so the
// device/NIC rates are directly observable.
ClusterSpec PlanSpec() {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 3;
  spec.net_bps = 1000.0;  // tiny numbers keep arithmetic exact
  spec.media_per_worker = {
      {kMemoryTier, MediaType::kMemory, 1 << 30, 4000.0, 8000.0},
      {kHddTier, MediaType::kHdd, 1 << 30, 100.0, 200.0},
  };
  return spec;
}

class TransferEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(PlanSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    engine_ = std::make_unique<TransferEngine>(cluster_.get());
    engine_->set_stream_cap_bps(0);  // expose raw device rates
    sim_ = cluster_->simulation();
  }

  NetworkLocation Node(int i) {
    return cluster_->worker(cluster_->worker_ids()[i])->location();
  }

  double TimedWrite(const ReplicationVector& rv, int64_t bytes,
                    const NetworkLocation& client) {
    double start = sim_->now();
    bool ok = false;
    engine_->WriteFileAsync("/f" + std::to_string(++seq_), bytes, 1 << 30,
                            rv, client, [&ok](Status st) {
                              ASSERT_TRUE(st.ok()) << st.ToString();
                              ok = true;
                            });
    sim_->RunUntilIdle();
    EXPECT_TRUE(ok);
    return sim_->now() - start;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<TransferEngine> engine_;
  sim::Simulation* sim_ = nullptr;
  int seq_ = 0;
};

TEST_F(TransferEngineTest, LocalSingleReplicaWriteIsMediaBound) {
  // Client on node0, one HDD replica lands locally (client-local
  // heuristic): no NIC hop, rate = 100 B/s.
  double elapsed = TimedWrite(ReplicationVector::Of(0, 0, 1), 1000, Node(0));
  EXPECT_NEAR(elapsed, 10.0, 1e-6);
}

TEST_F(TransferEngineTest, LocalMemoryWriteUsesMemoryRate) {
  double elapsed = TimedWrite(ReplicationVector::Of(1, 0, 0), 1000, Node(0));
  EXPECT_NEAR(elapsed, 0.25, 1e-6);  // 1000 / 4000
}

TEST_F(TransferEngineTest, OffClusterWriteCrossesReceiverNic) {
  // Off-cluster client, one memory replica: NIC in (1000) < memory
  // write (4000) -> NIC-bound.
  double elapsed = TimedWrite(ReplicationVector::Of(1, 0, 0), 1000,
                              NetworkLocation());
  EXPECT_NEAR(elapsed, 1.0, 1e-6);
}

TEST_F(TransferEngineTest, PipelineBoundByItsSlowestMember) {
  // mem + 2 HDD: the HDD write side (100) gates the whole pipeline.
  double elapsed = TimedWrite(ReplicationVector::Of(1, 0, 2), 1000, Node(0));
  EXPECT_NEAR(elapsed, 10.0, 1e-6);
}

TEST_F(TransferEngineTest, StreamCapGatesWhenTighter) {
  engine_->set_stream_cap_bps(50.0);
  double elapsed = TimedWrite(ReplicationVector::Of(1, 0, 0), 1000, Node(0));
  EXPECT_NEAR(elapsed, 20.0, 1e-6);  // 1000 / 50
}

TEST_F(TransferEngineTest, ConnectionsTrackedDuringTransfer) {
  const ClusterState& state = cluster_->master()->cluster_state();
  engine_->WriteFileAsync("/conn", 1000, 1 << 30,
                          ReplicationVector::Of(0, 0, 2), Node(0),
                          [](Status st) { ASSERT_TRUE(st.ok()); });
  // The flow is in progress (callbacks have not run yet): media and
  // worker connection counts reflect it.
  int media_conns = 0, worker_conns = 0;
  for (const auto& [id, m] : state.media()) media_conns += m.nr_connections;
  for (const auto& [id, w] : state.workers()) {
    worker_conns += w.nr_connections;
  }
  EXPECT_EQ(media_conns, 2);
  EXPECT_EQ(worker_conns, 2);
  sim_->RunUntilIdle();
  media_conns = worker_conns = 0;
  for (const auto& [id, m] : state.media()) media_conns += m.nr_connections;
  for (const auto& [id, w] : state.workers()) {
    worker_conns += w.nr_connections;
  }
  EXPECT_EQ(media_conns, 0);
  EXPECT_EQ(worker_conns, 0);
}

TEST_F(TransferEngineTest, ReadReplicaLocalVsRemote) {
  // Place one HDD replica on node1 deterministically.
  bool ok = false;
  engine_->WriteFileAsync("/r", 1000, 1 << 30,
                          ReplicationVector::Of(0, 0, 1), Node(1),
                          [&ok](Status st) {
                            ASSERT_TRUE(st.ok());
                            ok = true;
                          });
  sim_->RunUntilIdle();
  ASSERT_TRUE(ok);
  auto located = cluster_->master()->GetBlockLocations("/r", Node(1));
  ASSERT_TRUE(located.ok());
  const PlacedReplica source = (*located)[0].locations[0];

  // Local read: HDD read rate 200 -> 5 s.
  double start = sim_->now();
  engine_->ReadReplicaAsync(1000, source, Node(1),
                            [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 5.0, 1e-6);

  // Remote read: still HDD-bound (200 < NIC 1000) but crosses both NICs.
  start = sim_->now();
  engine_->ReadReplicaAsync(1000, source, Node(2),
                            [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 5.0, 1e-6);
}

TEST_F(TransferEngineTest, NodeTransferTimingAndLocalShortcut) {
  double start = sim_->now();
  engine_->NodeTransferAsync(2000, Node(0), Node(1),
                             [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 2.0, 1e-6);  // 2000 / NIC 1000
  // Same-node transfer is free.
  start = sim_->now();
  engine_->NodeTransferAsync(2000, Node(0), Node(0),
                             [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 0.0, 1e-9);
}

TEST_F(TransferEngineTest, ScratchAndCacheUseTheRightDevices) {
  double start = sim_->now();
  engine_->ScratchWriteAsync(1000, Node(0),
                             [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 10.0, 1e-6);  // HDD write 100

  start = sim_->now();
  engine_->ScratchReadAsync(1000, Node(0),
                            [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 5.0, 1e-6);  // HDD read 200

  start = sim_->now();
  engine_->CacheReadAsync(1000, Node(0),
                          [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_NEAR(sim_->now() - start, 0.125, 1e-6);  // memory read 8000
}

TEST_F(TransferEngineTest, PumpExecutesReplicaCopiesWithTiming) {
  bool ok = false;
  engine_->WriteFileAsync("/move", 1000, 1 << 30,
                          ReplicationVector::Of(0, 0, 1), Node(0),
                          [&ok](Status st) {
                            ASSERT_TRUE(st.ok());
                            ok = true;
                          });
  sim_->RunUntilIdle();
  ASSERT_TRUE(ok);
  UserContext ctx;
  ASSERT_TRUE(cluster_->master()
                  ->SetReplication("/move", ReplicationVector::Of(1, 0, 1),
                                   ctx)
                  .ok());
  double start = sim_->now();
  auto started = engine_->PumpCommandsTimed();
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(*started, 1);
  sim_->RunUntilIdle();
  // Copy HDD -> memory: source HDD read (200) gates; 1000/200 = 5 s.
  EXPECT_NEAR(sim_->now() - start, 5.0, 1e-6);
  auto located = cluster_->master()->GetBlockLocations("/move", Node(0));
  ASSERT_TRUE(located.ok());
  EXPECT_EQ((*located)[0].locations.size(), 2u);
}

TEST_F(TransferEngineTest, ByteCountersAccumulate) {
  bool ok = false;
  engine_->WriteFileAsync("/bytes", 5000, 1000,
                          ReplicationVector::Of(0, 0, 1), Node(0),
                          [&ok](Status st) {
                            ASSERT_TRUE(st.ok());
                            ok = true;
                          });
  sim_->RunUntilIdle();
  ASSERT_TRUE(ok);
  EXPECT_EQ(engine_->bytes_written(), 5000);
  engine_->ReadFileAsync("/bytes", Node(0),
                         [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_->RunUntilIdle();
  EXPECT_EQ(engine_->bytes_read(), 5000);
}

}  // namespace
}  // namespace octo
