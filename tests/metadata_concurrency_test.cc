// Linearizability stress tests for the concurrent metadata plane:
// concurrent rename/delete racing Open/GetBlockLocations/ls over
// overlapping subtrees, exactly-once journaling of acked mutations,
// journal-replay equivalence, group-commit durability, and staged vs
// immediate block-report application.
//
// Runs seeded (deterministic per-thread op sequences) by default; set
// OCTO_STRESS_FREE_RUNNING=1 to let every thread loop on wall-clock time
// instead for soak testing. Designed to run under the tsan preset.

#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/master.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/units.h"
#include "gtest/gtest.h"
#include "namespacefs/edit_log.h"
#include "workload/slive.h"

namespace octo {
namespace {

const UserContext kUser{"root", {}};

bool FreeRunning() {
  const char* env = std::getenv("OCTO_STRESS_FREE_RUNNING");
  return env != nullptr && env[0] == '1';
}

// Iteration budget: seeded runs use fixed counts; free-running soaks use
// a larger multiple.
int Iters(int seeded) { return FreeRunning() ? seeded * 20 : seeded; }

std::unique_ptr<Master> NewMaster() {
  static SystemClock clock;
  return std::make_unique<Master>(MasterOptions{}, &clock);
}

// A reader must never observe a renamed entry in both places or neither
// place within one snapshot: every ListDirectory of the parent sees
// exactly one of src|dst, and GetFileStatus of both names yields exactly
// one hit for any pair of calls made in either order.
TEST(MetadataConcurrency, RenameNeverInBothOrNeitherLocation) {
  auto master = NewMaster();
  ASSERT_TRUE(master->Mkdirs("/race", kUser).ok());
  ASSERT_TRUE(
      master
          ->Create("/race/a", ReplicationVector::OfTotal(1), 64 * kMiB,
                   false, kUser, "w")
          .ok());
  ASSERT_TRUE(master->CompleteFile("/race/a", "w").ok());

  // The readers drive the duration (fixed snapshot count each); the
  // mutator ping-pongs until every reader is done, so on any scheduler
  // every snapshot races a live rename stream.
  std::atomic<bool> stop{false};
  const int kSnapshotsPerReader = Iters(800);

  std::thread mutator([&] {
    for (int i = 0; !stop.load(); ++i) {
      const char* src = (i % 2 == 0) ? "/race/a" : "/race/b";
      const char* dst = (i % 2 == 0) ? "/race/b" : "/race/a";
      ASSERT_TRUE(master->Rename(src, dst, kUser).ok()) << i;
    }
  });

  std::vector<std::thread> readers;
  std::atomic<int> readers_done{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kSnapshotsPerReader; ++i) {
        auto listing = master->ListDirectory("/race", kUser);
        ASSERT_TRUE(listing.ok());
        int hits = 0;
        for (const FileStatus& entry : *listing) {
          if (entry.path == "/race/a" || entry.path == "/race/b") ++hits;
        }
        // One file, two possible names: every snapshot holds exactly one.
        ASSERT_EQ(hits, 1);
      }
      if (readers_done.fetch_add(1) + 1 == 3) stop.store(true);
    });
  }
  mutator.join();
  for (std::thread& r : readers) r.join();
  // The file itself survived the ping-pong under one of its two names.
  int final_hits = (master->GetFileStatus("/race/a", kUser).ok() ? 1 : 0) +
                   (master->GetFileStatus("/race/b", kUser).ok() ? 1 : 0);
  EXPECT_EQ(final_hits, 1);
}

// Deletes racing opens: GetBlockLocations either succeeds or reports
// NotFound; nothing in between, and ls of the parent never shows a
// half-deleted entry (the path is either present or absent).
TEST(MetadataConcurrency, DeleteRacingOpenAndList) {
  auto master = NewMaster();
  ASSERT_TRUE(master->Mkdirs("/churn", kUser).ok());
  const int kRounds = Iters(1500);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    for (int i = 0; i < kRounds; ++i) {
      std::string path = "/churn/f" + std::to_string(i % 17);
      Status created = master->Create(path, ReplicationVector::OfTotal(1),
                                      64 * kMiB, false, kUser, "w");
      if (created.ok()) {
        ASSERT_TRUE(master->CompleteFile(path, "w").ok());
      }
      if (i % 3 == 2) {
        auto deleted = master->Delete(path, false, kUser);
        ASSERT_TRUE(deleted.ok() || deleted.status().IsNotFound());
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Random rng(101 + t);
      while (!stop.load()) {
        std::string path =
            "/churn/f" + std::to_string(rng.UniformRange(0, 16));
        auto located = master->GetBlockLocations(path, NetworkLocation());
        ASSERT_TRUE(located.ok() || located.status().IsNotFound())
            << located.status().ToString();
        auto listing = master->ListDirectory("/churn", kUser);
        ASSERT_TRUE(listing.ok());
        for (const FileStatus& entry : *listing) {
          EXPECT_FALSE(entry.path.empty());
        }
      }
    });
  }
  mutator.join();
  for (std::thread& r : readers) r.join();
}

// Every acknowledged mutation appears in the journal exactly once, even
// when eight writers hammer disjoint paths concurrently.
TEST(MetadataConcurrency, AckedMutationsJournaledExactlyOnce) {
  auto master = NewMaster();
  constexpr int kThreads = 8;
  const int kPerThread = Iters(400);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(master->Mkdirs("/j/d" + std::to_string(t), kUser).ok());
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string path =
            "/j/d" + std::to_string(t) + "/f" + std::to_string(i);
        ASSERT_TRUE(master
                        ->Create(path, ReplicationVector::OfTotal(1),
                                 64 * kMiB, false, kUser, "w")
                        .ok());
        ASSERT_TRUE(master->CompleteFile(path, "w").ok());
      }
    });
  }
  for (std::thread& w : writers) w.join();

  std::map<std::string, int> creates, completes;
  for (const std::string& entry : master->edit_log()->entries()) {
    size_t op_end = entry.find('\t');
    ASSERT_NE(op_end, std::string::npos) << entry;
    std::string op = entry.substr(0, op_end);
    size_t path_end = entry.find('\t', op_end + 1);
    std::string path = entry.substr(
        op_end + 1,
        path_end == std::string::npos ? std::string::npos
                                      : path_end - op_end - 1);
    if (op == "CREATE") creates[path]++;
    if (op == "COMPLETE") completes[path]++;
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string path =
          "/j/d" + std::to_string(t) + "/f" + std::to_string(i);
      EXPECT_EQ(creates[path], 1) << path;
      EXPECT_EQ(completes[path], 1) << path;
    }
  }
}

// Replaying the journal written by a concurrent mutation storm into a
// fresh tree reproduces the live namespace exactly: journal order is a
// valid linearization of what actually happened.
TEST(MetadataConcurrency, ConcurrentStormReplaysToIdenticalNamespace) {
  auto master = NewMaster();
  constexpr int kThreads = 6;
  const int kPerThread = Iters(300);
  ASSERT_TRUE(master->Mkdirs("/storm", kUser).ok());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(7 * (t + 1));
      std::string dir = "/storm/d" + std::to_string(t);
      ASSERT_TRUE(master->Mkdirs(dir, kUser).ok());
      for (int i = 0; i < kPerThread; ++i) {
        std::string path = dir + "/f" + std::to_string(i);
        switch (rng.UniformRange(0, 3)) {
          case 0:
          case 1: {
            ASSERT_TRUE(master
                            ->Create(path, ReplicationVector::OfTotal(1),
                                     64 * kMiB, false, kUser, "w")
                            .ok());
            ASSERT_TRUE(master->CompleteFile(path, "w").ok());
            break;
          }
          case 2: {
            std::string prev = dir + "/f" + std::to_string(i > 0 ? i - 1 : 0);
            Status renamed =
                master->Rename(prev, dir + "/r" + std::to_string(i), kUser);
            ASSERT_TRUE(renamed.ok() || renamed.IsNotFound())
                << renamed.ToString();
            break;
          }
          default: {
            auto deleted = master->Delete(
                dir + "/f" + std::to_string(i > 1 ? i - 2 : 0), false, kUser);
            ASSERT_TRUE(deleted.ok() || deleted.status().IsNotFound());
            break;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  SystemClock replay_clock;
  NamespaceTree replayed(&replay_clock);
  ASSERT_TRUE(
      EditLog::Replay(master->edit_log()->entries(), 0, &replayed).ok());

  auto paths_of = [](const NamespaceTree& tree) {
    std::set<std::string> paths;
    tree.Visit([&](const NamespaceTree::VisitEntry& e) {
      paths.insert(e.status.path);
    });
    return paths;
  };
  EXPECT_EQ(paths_of(master->namespace_tree()), paths_of(replayed));
}

// Group commit durability: with the Master's default batched journal,
// after every mutation is acked the backing file holds every record,
// replays cleanly, and needed no more than one flush per record.
TEST(MetadataConcurrency, GroupCommitDurableAndReplayable) {
  std::string log_path =
      ::testing::TempDir() + "/octo_metadata_concurrency_gc.log";
  std::remove(log_path.c_str());
  {
    SystemClock clock;
    MasterOptions options;
    options.edit_log_path = log_path;
    Master master(options, &clock);
    constexpr int kThreads = 8;
    const int kPerThread = Iters(150);
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(master.Mkdirs("/gc/d" + std::to_string(t), kUser).ok());
    }
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string path =
              "/gc/d" + std::to_string(t) + "/f" + std::to_string(i);
          ASSERT_TRUE(master
                          .Create(path, ReplicationVector::OfTotal(1),
                                  64 * kMiB, false, kUser, "w")
                          .ok());
          ASSERT_TRUE(master.CompleteFile(path, "w").ok());
        }
      });
    }
    for (std::thread& w : writers) w.join();
    // Every acked mutation is already durable — no final flush needed.
    EXPECT_EQ(master.edit_log()->durable_records(),
              master.edit_log()->size());
    EXPECT_LE(master.edit_log()->sync_count(), master.edit_log()->size());
  }
  // Reopen from disk: the file carries a full, replayable journal.
  auto reopened = EditLog::Open(log_path);
  ASSERT_TRUE(reopened.ok());
  SystemClock replay_clock;
  NamespaceTree replayed(&replay_clock);
  ASSERT_TRUE(EditLog::Replay((*reopened)->entries(), 0, &replayed).ok());
  int64_t files = 0;
  replayed.Visit([&](const NamespaceTree::VisitEntry& e) {
    if (!e.status.is_dir) ++files;
  });
  EXPECT_EQ(files, 8 * Iters(150));
  std::remove(log_path.c_str());
}

// Staged report application is equivalent to immediate application: the
// same reports produce the same block map.
TEST(MetadataConcurrency, StagedReportsMatchImmediateApplication) {
  SystemClock clock;
  auto setup = [&](Master* master) {
    master->DefineTier({kHddTier, "HDD", MediaType::kHdd});
    std::vector<MediumId> media;
    for (int w = 0; w < 4; ++w) {
      auto worker = master->RegisterWorker(
          NetworkLocation("r0", "n" + std::to_string(w)), 1e9);
      ASSERT_TRUE(worker.ok());
      MediumSpec spec;
      spec.tier = kHddTier;
      spec.type = MediaType::kHdd;
      spec.capacity_bytes = 64 * kGiB;
      spec.write_bps = FromMBps(100);
      spec.read_bps = FromMBps(150);
      ASSERT_TRUE(master->RegisterMedium(*worker, spec, {}).ok());
    }
    ASSERT_TRUE(master->Mkdirs("/eq", kUser).ok());
    for (int f = 0; f < 32; ++f) {
      std::string path = "/eq/f" + std::to_string(f);
      ASSERT_TRUE(master
                      ->Create(path, ReplicationVector::OfTotal(2), 64 * kMiB,
                               false, kUser, "w")
                      .ok());
      auto located = master->AddBlock(path, "w", NetworkLocation());
      ASSERT_TRUE(located.ok());
      std::vector<MediumId> succeeded;
      for (const PlacedReplica& r : located->locations) {
        succeeded.push_back(r.medium);
      }
      ASSERT_TRUE(master
                      ->CommitBlock(path, "w", located->block.id, 64 * kMiB,
                                    succeeded, located->block.genstamp)
                      .ok());
      ASSERT_TRUE(master->CompleteFile(path, "w").ok());
    }
  };
  Master immediate(MasterOptions{}, &clock);
  Master staged(MasterOptions{}, &clock);
  setup(&immediate);
  setup(&staged);

  // Identical reports for both masters: every replica each worker's media
  // currently hold, minus one block to exercise removal reconciliation.
  auto build_reports = [](Master* master) {
    std::map<WorkerId, BlockReport> reports;
    std::map<MediumId, WorkerId> owner;
    for (const auto& [id, medium] : master->cluster_state().media()) {
      owner[id] = medium.worker;
    }
    master->block_manager().ForEach([&](const BlockRecord& record) {
      if (record.id % 7 == 0) return;  // withheld: reported missing
      for (MediumId m : record.locations) {
        ReplicaDescriptor r;
        r.block = record.id;
        r.genstamp = record.genstamp;
        r.length = record.length;
        reports[owner[m]][m].push_back(r);
      }
    });
    return reports;
  };
  auto immediate_reports = build_reports(&immediate);
  auto staged_reports = build_reports(&staged);

  for (const auto& [worker, report] : immediate_reports) {
    ASSERT_TRUE(immediate.ProcessBlockReport(worker, report).ok());
  }
  for (const auto& [worker, report] : staged_reports) {
    staged.StageBlockReport(worker, report);
  }
  EXPECT_EQ(staged.FlushStagedReports(),
            static_cast<int>(staged_reports.size()));

  auto snapshot = [](Master* master) {
    std::map<BlockId, std::multiset<MediumId>> locations;
    master->block_manager().ForEach([&](const BlockRecord& record) {
      locations[record.id] = {record.locations.begin(),
                              record.locations.end()};
    });
    return locations;
  };
  EXPECT_EQ(snapshot(&immediate), snapshot(&staged));
}

// Mixed storm across overlapping subtrees: seeded per-thread sequences
// mixing mkdir/create/rename/delete with reads; the test passes when no
// invariant trips (readers always see well-formed snapshots) and the
// tree's file count matches a single-threaded replay of the journal.
TEST(MetadataConcurrency, MixedStormOverOverlappingSubtrees) {
  auto master = NewMaster();
  ASSERT_TRUE(master->Mkdirs("/mix/shared", kUser).ok());
  constexpr int kThreads = 8;
  const int kPerThread = Iters(250);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(31 * (t + 1));
      for (int i = 0; i < kPerThread; ++i) {
        // Half the ops target the shared subtree, half a private one —
        // plenty of genuine lock conflicts plus genuine parallelism.
        bool shared = rng.UniformRange(0, 1) == 0;
        std::string dir =
            shared ? "/mix/shared" : "/mix/t" + std::to_string(t);
        std::string path = dir + "/x" + std::to_string(t) + "_" +
                           std::to_string(rng.UniformRange(0, 49));
        switch (rng.UniformRange(0, 4)) {
          case 0: {
            Status made = master->Mkdirs(path + "_dir", kUser);
            ASSERT_TRUE(made.ok()) << made.ToString();
            break;
          }
          case 1: {
            Status created =
                master->Create(path, ReplicationVector::OfTotal(1),
                               64 * kMiB, false, kUser, "w" + path);
            ASSERT_TRUE(created.ok() || created.IsAlreadyExists() ||
                        created.IsUnavailable())
                << created.ToString();
            if (created.ok()) {
              ASSERT_TRUE(master->CompleteFile(path, "w" + path).ok());
            }
            break;
          }
          case 2: {
            Status renamed = master->Rename(path, path + "_r", kUser);
            ASSERT_TRUE(renamed.ok() || renamed.IsNotFound() ||
                        renamed.IsAlreadyExists())
                << renamed.ToString();
            break;
          }
          case 3: {
            auto deleted = master->Delete(path, true, kUser);
            ASSERT_TRUE(deleted.ok() || deleted.status().IsNotFound());
            break;
          }
          default: {
            auto listing = master->ListDirectory(dir, kUser);
            ASSERT_TRUE(listing.ok() || listing.status().IsNotFound());
            break;
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  SystemClock replay_clock;
  NamespaceTree replayed(&replay_clock);
  ASSERT_TRUE(
      EditLog::Replay(master->edit_log()->entries(), 0, &replayed).ok());
  EXPECT_EQ(master->namespace_tree().NumFiles(), replayed.NumFiles());
  EXPECT_EQ(master->namespace_tree().NumDirectories(),
            replayed.NumDirectories());
}

// Lease-manager striping smoke: concurrent acquire/renew/release across
// many paths keeps the table consistent.
TEST(MetadataConcurrency, LeaseStripesUnderConcurrency) {
  SystemClock clock;
  LeaseManager leases(&clock, 60 * kMicrosPerSecond);
  constexpr int kThreads = 8;
  const int kPerThread = Iters(2000);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::string holder = "h" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        std::string path = "/lease/p" + std::to_string(i % 64);
        if (leases.Acquire(path, holder).ok()) {
          EXPECT_TRUE(leases.Renew(path, holder).ok());
          EXPECT_TRUE(leases.Release(path, holder).ok());
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(leases.num_leases(), 0);
}

// Multi-threaded S-Live is namespace-equivalent to single-threaded: same
// op set, same resulting file/dir counts.
TEST(MetadataConcurrency, MultiThreadedSliveMatchesSingleThreaded) {
  auto count = [](int threads) {
    auto master = NewMaster();
    workload::SliveOptions options;
    options.ops_per_type = 400;
    options.threads = threads;
    auto result = workload::RunSlive(master.get(), options);
    EXPECT_TRUE(result.ok());
    return std::pair<int64_t, int64_t>(master->namespace_tree().NumFiles(),
                                       master->namespace_tree()
                                           .NumDirectories());
  };
  auto single = count(1);
  auto multi = count(4);
  EXPECT_EQ(single, multi);
}

}  // namespace
}  // namespace octo
