// Tests for cluster-level services: BlockManager bookkeeping, the
// federation mount table, the Backup Master (sync / checkpoint /
// failover), the Worker class, and Cluster control loops.

#include <gtest/gtest.h>

#include "cluster/backup_master.h"
#include "cluster/block_manager.h"
#include "cluster/cluster.h"
#include "cluster/federation.h"
#include "cluster/worker.h"
#include "common/units.h"

namespace octo {
namespace {

const UserContext kRoot{"root", {}};

// ---------------------------------------------------------------------------
// BlockManager

TEST(BlockManagerTest, AddFindRemove) {
  BlockManager bm;
  BlockId id = bm.NextBlockId();
  BlockRecord record;
  record.id = id;
  record.file = "/f";
  record.length = 100;
  record.expected = ReplicationVector::OfTotal(3);
  ASSERT_TRUE(bm.AddBlock(record).ok());
  EXPECT_TRUE(bm.AddBlock(record).IsAlreadyExists());
  EXPECT_NE(bm.Find(id), nullptr);
  EXPECT_EQ(bm.NumBlocks(), 1);
  ASSERT_TRUE(bm.RemoveBlock(id).ok());
  EXPECT_TRUE(bm.RemoveBlock(id).IsNotFound());
  EXPECT_EQ(bm.Find(id), nullptr);
}

TEST(BlockManagerTest, ReplicaBookkeeping) {
  BlockManager bm;
  BlockRecord record;
  record.id = 1;
  ASSERT_TRUE(bm.AddBlock(record).ok());
  ASSERT_TRUE(bm.AddReplica(1, 10).ok());
  ASSERT_TRUE(bm.AddReplica(1, 11).ok());
  EXPECT_TRUE(bm.AddReplica(1, 10).IsAlreadyExists());
  EXPECT_TRUE(bm.AddReplica(2, 10).IsNotFound());
  EXPECT_EQ(bm.BlocksOnMedium(10), (std::vector<BlockId>{1}));
  ASSERT_TRUE(bm.RemoveReplica(1, 10).ok());
  EXPECT_TRUE(bm.RemoveReplica(1, 10).IsNotFound());
  EXPECT_TRUE(bm.BlocksOnMedium(10).empty());
}

TEST(BlockManagerTest, NextBlockIdSkipsExistingIds) {
  BlockManager bm;
  BlockRecord record;
  record.id = 100;
  ASSERT_TRUE(bm.AddBlock(record).ok());
  EXPECT_GT(bm.NextBlockId(), 100);
}

// ---------------------------------------------------------------------------
// Federation

class FederationTest : public ::testing::Test {
 protected:
  FederationTest()
      : m1_(MasterOptions{}, SystemClock::Default()),
        m2_(MasterOptions{}, SystemClock::Default()) {}

  Master m1_, m2_;
  Federation fed_;
};

TEST_F(FederationTest, RoutesByLongestPrefix) {
  ASSERT_TRUE(fed_.Mount("/", &m1_).ok());
  ASSERT_TRUE(fed_.Mount("/warehouse", &m2_).ok());
  EXPECT_EQ(*fed_.Route("/tmp/x"), &m1_);
  EXPECT_EQ(*fed_.Route("/warehouse/t1"), &m2_);
  EXPECT_EQ(*fed_.Route("/warehouse"), &m2_);
  EXPECT_EQ(*fed_.RoutePrefix("/warehouse/t1"), "/warehouse");
  // "/warehouse2" is NOT under "/warehouse".
  EXPECT_EQ(*fed_.Route("/warehouse2"), &m1_);
}

TEST_F(FederationTest, NoMountIsNotFound) {
  ASSERT_TRUE(fed_.Mount("/data", &m1_).ok());
  EXPECT_TRUE(fed_.Route("/other").status().IsNotFound());
}

TEST_F(FederationTest, MountValidation) {
  EXPECT_TRUE(fed_.Mount("relative", &m1_).IsInvalidArgument());
  EXPECT_TRUE(fed_.Mount("/x", nullptr).IsInvalidArgument());
  ASSERT_TRUE(fed_.Mount("/x", &m1_).ok());
  EXPECT_TRUE(fed_.Mount("/x", &m2_).IsAlreadyExists());
  ASSERT_TRUE(fed_.Unmount("/x").ok());
  EXPECT_TRUE(fed_.Unmount("/x").IsNotFound());
}

TEST_F(FederationTest, CrossMountRenameRejected) {
  ASSERT_TRUE(fed_.Mount("/a", &m1_).ok());
  ASSERT_TRUE(fed_.Mount("/b", &m2_).ok());
  EXPECT_TRUE(fed_.RouteRename("/a/f", "/b/f").status().IsNotSupported());
  EXPECT_EQ(*fed_.RouteRename("/a/f", "/a/g"), &m1_);
}

TEST_F(FederationTest, NamespacesAreIndependent) {
  ASSERT_TRUE(fed_.Mount("/a", &m1_).ok());
  ASSERT_TRUE(fed_.Mount("/b", &m2_).ok());
  ASSERT_TRUE((*fed_.Route("/a/dir"))->Mkdirs("/a/dir", kRoot).ok());
  EXPECT_TRUE(m1_.GetFileStatus("/a/dir", kRoot).ok());
  EXPECT_FALSE(m2_.GetFileStatus("/a/dir", kRoot).ok());
}

// ---------------------------------------------------------------------------
// Worker

TEST(WorkerTest, AttachAndDataPlane) {
  WorkerOptions options;
  options.location = NetworkLocation("r1", "n1");
  Worker worker(0, options, nullptr);
  MediumSpec spec{kHddTier, MediaType::kHdd, 1000, 1e8, 1e8};
  ASSERT_TRUE(worker.AttachMedium(5, spec).ok());
  EXPECT_TRUE(worker.AttachMedium(5, spec).status().IsAlreadyExists());

  ASSERT_TRUE(worker.WriteBlock(5, 1, "data").ok());
  EXPECT_TRUE(worker.HasBlock(5, 1));
  EXPECT_EQ(*worker.ReadBlock(5, 1), "data");
  EXPECT_EQ(*worker.RemainingBytes(5), 996);
  ASSERT_TRUE(worker.DeleteBlock(5, 1).ok());
  EXPECT_FALSE(worker.HasBlock(5, 1));
  EXPECT_TRUE(worker.WriteBlock(99, 1, "x").IsNotFound());
}

TEST(WorkerTest, CapacityEnforced) {
  WorkerOptions options;
  options.location = NetworkLocation("r1", "n1");
  Worker worker(0, options, nullptr);
  MediumSpec spec{kHddTier, MediaType::kHdd, 10, 1e8, 1e8};
  ASSERT_TRUE(worker.AttachMedium(0, spec).ok());
  EXPECT_TRUE(worker.WriteBlock(0, 1, "12345678901").IsNoSpace());
  ASSERT_TRUE(worker.WriteBlock(0, 1, "1234567890").ok());
}

TEST(WorkerTest, VirtualBytesCountAgainstCapacity) {
  WorkerOptions options;
  options.location = NetworkLocation("r1", "n1");
  Worker worker(0, options, nullptr);
  MediumSpec spec{kHddTier, MediaType::kHdd, 100, 1e8, 1e8};
  ASSERT_TRUE(worker.AttachMedium(0, spec).ok());
  ASSERT_TRUE(worker.AddVirtualBytes(0, 90).ok());
  EXPECT_EQ(*worker.RemainingBytes(0), 10);
  EXPECT_TRUE(worker.WriteBlock(0, 1, std::string(11, 'x')).IsNoSpace());
  ASSERT_TRUE(worker.AddVirtualBytes(0, -200).ok());  // clamps at 0
  EXPECT_EQ(*worker.RemainingBytes(0), 100);
}

TEST(WorkerTest, HeartbeatAndBlockReport) {
  WorkerOptions options;
  options.location = NetworkLocation("r1", "n1");
  Worker worker(3, options, nullptr);
  ASSERT_TRUE(
      worker.AttachMedium(0, {kHddTier, MediaType::kHdd, 100, 1e8, 1e8})
          .ok());
  ASSERT_TRUE(
      worker.AttachMedium(1, {kSsdTier, MediaType::kSsd, 200, 3e8, 4e8})
          .ok());
  ASSERT_TRUE(worker.WriteBlock(0, 7, "abc").ok());
  HeartbeatPayload hb = worker.BuildHeartbeat();
  EXPECT_EQ(hb.worker, 3);
  ASSERT_EQ(hb.media.size(), 2u);
  EXPECT_EQ(hb.media[0].remaining_bytes, 97);
  BlockReport report = worker.BuildBlockReport();
  ASSERT_EQ(report[0].size(), 1u);
  EXPECT_EQ(report[0][0].block, 7);
  EXPECT_EQ(report[0][0].length, 3);
  EXPECT_TRUE(report[0][0].finalized);
  EXPECT_TRUE(report[1].empty());
}

TEST(WorkerTest, SharedMediumSplitsUsageAcrossSharers) {
  WorkerOptions options;
  options.location = NetworkLocation("r1", "n1");
  Worker w1(0, options, nullptr);
  options.location = NetworkLocation("r1", "n2");
  Worker w2(1, options, nullptr);
  auto store = std::make_shared<MemoryBlockStore>();
  MediumSpec spec{kRemoteTier, MediaType::kRemote, 1000, 1e8, 1e8};
  ASSERT_TRUE(w1.AttachSharedMedium(10, spec, store, 2,
                                    sim::kInvalidResource,
                                    sim::kInvalidResource)
                  .ok());
  ASSERT_TRUE(w2.AttachSharedMedium(11, spec, store, 2,
                                    sim::kInvalidResource,
                                    sim::kInvalidResource)
                  .ok());
  // Writes through either worker land in the same store; each worker
  // attributes half of the shared usage to itself.
  ASSERT_TRUE(w1.WriteBlock(10, 1, std::string(100, 'x')).ok());
  EXPECT_TRUE(w2.HasBlock(11, 1));
  EXPECT_EQ(*w1.RemainingBytes(10), 950);
  EXPECT_EQ(*w2.RemainingBytes(11), 950);
}

// ---------------------------------------------------------------------------
// BackupMaster

TEST(BackupMasterTest, SyncTracksEditLog) {
  Master primary(MasterOptions{}, SystemClock::Default());
  BackupMaster backup(&primary, SystemClock::Default());
  ASSERT_TRUE(primary.Mkdirs("/a", kRoot).ok());
  ASSERT_TRUE(backup.Sync().ok());
  EXPECT_TRUE(backup.mirror().Exists("/a"));
  ASSERT_TRUE(primary.Mkdirs("/b", kRoot).ok());
  EXPECT_FALSE(backup.mirror().Exists("/b"));  // not synced yet
  ASSERT_TRUE(backup.Sync().ok());
  EXPECT_TRUE(backup.mirror().Exists("/b"));
  EXPECT_EQ(backup.synced_entries(), 2);
}

TEST(BackupMasterTest, CheckpointMarksLog) {
  Master primary(MasterOptions{}, SystemClock::Default());
  BackupMaster backup(&primary, SystemClock::Default());
  ASSERT_TRUE(primary.Mkdirs("/a", kRoot).ok());
  auto image = backup.CreateCheckpoint();
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(primary.edit_log()->checkpointed(), 1);
  EXPECT_NE(image->find("/a"), std::string::npos);
}

TEST(BackupMasterTest, TakeOverWithoutCheckpointReplaysWholeLog) {
  Master primary(MasterOptions{}, SystemClock::Default());
  BackupMaster backup(&primary, SystemClock::Default());
  ASSERT_TRUE(primary.Mkdirs("/only-in-log", kRoot).ok());
  auto replacement =
      backup.TakeOver(MasterOptions{}, SystemClock::Default());
  ASSERT_TRUE(replacement.ok());
  EXPECT_TRUE((*replacement)->GetFileStatus("/only-in-log", kRoot).ok());
}

// ---------------------------------------------------------------------------
// Cluster orchestration

TEST(ClusterTest, CreateValidatesSpec) {
  ClusterSpec bad;
  bad.num_racks = 0;
  EXPECT_TRUE(Cluster::Create(bad).status().IsInvalidArgument());
  ClusterSpec no_media;
  no_media.media_per_worker.clear();
  EXPECT_TRUE(Cluster::Create(no_media).status().IsInvalidArgument());
}

TEST(ClusterTest, PaperSpecShapesTheCluster) {
  auto cluster = Cluster::Create(PaperClusterSpec());
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->worker_ids().size(), 9u);
  const ClusterState& state = (*cluster)->master()->cluster_state();
  EXPECT_EQ(state.NumActiveTiers(), 3);
  EXPECT_EQ(state.media().size(), 45u);  // 5 media x 9 workers
  // Profiled rates match Table 2 (media profiled through the simulator).
  EXPECT_NEAR(ToMBps(state.TierAvgWriteBps(kMemoryTier)), 1897.4, 0.1);
  EXPECT_NEAR(ToMBps(state.TierAvgReadBps(kHddTier)), 177.1, 0.1);
}

TEST(ClusterTest, StoppedWorkerSkippedByPump) {
  auto cluster = Cluster::Create(PaperClusterSpec());
  ASSERT_TRUE(cluster.ok());
  WorkerId victim = (*cluster)->worker_ids()[0];
  (*cluster)->StopWorker(victim);
  EXPECT_TRUE((*cluster)->IsStopped(victim));
  ASSERT_TRUE((*cluster)->PumpHeartbeats().ok());
  EXPECT_FALSE(
      (*cluster)->master()->cluster_state().FindWorker(victim)->alive);
  (*cluster)->RestartWorker(victim);
  ASSERT_TRUE((*cluster)->PumpHeartbeats().ok());
  EXPECT_TRUE(
      (*cluster)->master()->cluster_state().FindWorker(victim)->alive);
}

}  // namespace
}  // namespace octo
