// Fault-injection tests: the deterministic seeded FaultRegistry, the
// crash/retry paths it exercises (command redelivery, client location
// refresh, replica failover), the regressions this PR fixes (block
// reports from dead workers, short replicas, stale location snapshots),
// and a seeded chaos harness asserting no data loss while concurrent
// failures stay below the replication factor.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "common/units.h"
#include "fault/fault.h"
#include "workload/transfer_engine.h"

namespace octo {
namespace {

using fault::FaultRegistry;
using fault::FaultSpec;
using fault::Site;

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 3;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd, hdd};
  return spec;
}

/// Advances the cluster's simulated clock (heartbeats, leases, and the
/// command/worker timeouts all read it).
void AdvanceSim(Cluster* cluster, double seconds) {
  cluster->simulation()->Schedule(seconds, [] {});
  cluster->simulation()->RunUntilIdle();
}

WorkerId WorkerOfMedium(Cluster* cluster, MediumId medium) {
  const MediumInfo* info = cluster->master()->cluster_state().FindMedium(
      medium);
  return info != nullptr ? info->worker : kInvalidWorker;
}

// ---------------------------------------------------------------------------
// FaultRegistry unit tests

TEST(FaultRegistryTest, ScopingAndHitBudget) {
  FaultRegistry faults(1);
  int h = faults.Arm({.site = Site::kStoreRead, .worker = 3, .max_hits = 2});
  // Wrong worker: no fire.
  EXPECT_TRUE(faults.Check(Site::kStoreRead, 4, 0, 0).ok());
  // Wrong site: no fire.
  EXPECT_TRUE(faults.Check(Site::kStoreWrite, 3, 0, 0).ok());
  // Matching consults fire until the budget runs out.
  EXPECT_TRUE(faults.Check(Site::kStoreRead, 3, 0, 0).IsIoError());
  EXPECT_TRUE(faults.Check(Site::kStoreRead, 3, 1, 7).IsIoError());
  EXPECT_TRUE(faults.Check(Site::kStoreRead, 3, 0, 0).ok());
  EXPECT_EQ(faults.hits(Site::kStoreRead), 2);
  faults.Disarm(h);
  EXPECT_TRUE(faults.Check(Site::kStoreRead, 3, 0, 0).ok());
}

TEST(FaultRegistryTest, InjectedCodeAndClearAll) {
  FaultRegistry faults(1);
  faults.Arm({.site = Site::kStoreWrite, .code = StatusCode::kNoSpace});
  EXPECT_TRUE(faults.Check(Site::kStoreWrite, 0, 0, 0).IsNoSpace());
  faults.ClearAll();
  EXPECT_TRUE(faults.Check(Site::kStoreWrite, 0, 0, 0).ok());
  EXPECT_EQ(faults.total_hits(), 1);
}

TEST(FaultRegistryTest, ProbabilisticScheduleIsSeedDeterministic) {
  auto trace = [](uint64_t seed) {
    FaultRegistry faults(seed);
    faults.Arm({.site = Site::kHeartbeat, .probability = 0.5});
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!faults.Check(Site::kHeartbeat, i % 5).ok());
    }
    return fired;
  };
  EXPECT_EQ(trace(7), trace(7));
  // The schedule actually mixes hits and misses.
  std::vector<bool> t = trace(7);
  EXPECT_GT(std::count(t.begin(), t.end(), true), 0);
  EXPECT_GT(std::count(t.begin(), t.end(), false), 0);
}

TEST(FaultRegistryTest, CertainFaultsConsumeNoRandomness) {
  // Arming a deterministic fault before a probabilistic one must not
  // shift the latter's schedule.
  auto trace = [](bool with_certain) {
    FaultRegistry faults(9);
    if (with_certain) {
      faults.Arm({.site = Site::kStoreWrite, .max_hits = -1});
    }
    faults.Arm({.site = Site::kHeartbeat, .probability = 0.5});
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      (void)faults.Check(Site::kStoreWrite, 0, 0, 0);
      fired.push_back(!faults.Check(Site::kHeartbeat, 0).ok());
    }
    return fired;
  };
  EXPECT_EQ(trace(false), trace(true));
}

TEST(FaultRegistryTest, ThrottleFactorIsPureQuery) {
  FaultRegistry faults(1);
  faults.Arm({.site = Site::kMediumThrottle, .medium = 2,
              .throttle_factor = 0.25});
  faults.Arm({.site = Site::kMediumThrottle, .medium = 2,
              .throttle_factor = 0.5});
  EXPECT_DOUBLE_EQ(faults.ThrottleFactor(0, 2), 0.25);  // min wins
  EXPECT_DOUBLE_EQ(faults.ThrottleFactor(0, 3), 1.0);
  EXPECT_EQ(faults.hits(Site::kMediumThrottle), 0);  // queries do not count
}

// ---------------------------------------------------------------------------
// Storage-layer faults through the full stack

class FaultClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(SmallSpec()); }

  void Reset(const ClusterSpec& spec) {
    auto cluster = Cluster::Create(spec);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    faults_ = std::make_unique<FaultRegistry>(1234);
    cluster_->InstallFaultRegistry(faults_.get());
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
  }

  void WriteTestFile(const std::string& path, const std::string& content,
                     const ReplicationVector& rv) {
    CreateOptions options;
    options.block_size = kMiB;
    options.rep_vector = rv;
    ASSERT_TRUE(fs_->WriteFile(path, content, options).ok());
  }

  const BlockRecord* FirstBlock(const std::string& path) {
    auto located = fs_->GetFileBlockLocations(path, 0, 1);
    if (!located.ok() || located->empty()) return nullptr;
    return cluster_->master()->block_manager().Find((*located)[0].block.id);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FaultRegistry> faults_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(FaultClusterTest, StoreWriteFaultDropsOnePipelineLeg) {
  faults_->Arm({.site = Site::kStoreWrite, .max_hits = 1,
                .code = StatusCode::kIoError});
  WriteTestFile("/f", std::string(256 * 1024, 'w'),
                ReplicationVector::OfTotal(3));
  EXPECT_EQ(faults_->hits(Site::kStoreWrite), 1);
  // The failed leg was dropped mid-block and pipeline recovery brought in
  // a replacement member: the block commits fully replicated without the
  // monitor's help.
  const BlockRecord* record = FirstBlock("/f");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  EXPECT_EQ(FirstBlock("/f")->locations.size(), 3u);
  EXPECT_EQ(*fs_->ReadFile("/f"), std::string(256 * 1024, 'w'));
}

TEST_F(FaultClusterTest, TransientStoreReadFaultFailsOverWithoutReport) {
  WriteTestFile("/f", std::string(256 * 1024, 'r'),
                ReplicationVector::OfTotal(3));
  faults_->Arm({.site = Site::kStoreRead, .max_hits = 1,
                .code = StatusCode::kIoError});
  EXPECT_EQ(*fs_->ReadFile("/f"), std::string(256 * 1024, 'r'));
  EXPECT_EQ(faults_->hits(Site::kStoreRead), 1);
  // A transient I/O error must not cost the block a replica.
  EXPECT_EQ(FirstBlock("/f")->locations.size(), 3u);
}

TEST_F(FaultClusterTest, SilentCorruptionOnWriteIsCaughtAndRepaired) {
  faults_->Arm({.site = Site::kCorruptOnWrite, .max_hits = 1});
  WriteTestFile("/f", std::string(256 * 1024, 'c'),
                ReplicationVector::OfTotal(3));
  EXPECT_EQ(faults_->hits(Site::kCorruptOnWrite), 1);
  // All three replicas committed; one of them silently rotted after the
  // checksum was computed. The scrubber finds it without any client read.
  EXPECT_EQ(FirstBlock("/f")->locations.size(), 3u);
  ASSERT_TRUE(cluster_->RunScrubber().ok());
  EXPECT_EQ(FirstBlock("/f")->locations.size(), 2u);
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  EXPECT_EQ(FirstBlock("/f")->locations.size(), 3u);
  EXPECT_EQ(*cluster_->RunScrubber(), 0);
  EXPECT_EQ(*fs_->ReadFile("/f"), std::string(256 * 1024, 'c'));
}

TEST_F(FaultClusterTest, HeartbeatDropDelaysCommandsAndLiveness) {
  WriteTestFile("/f", std::string(256 * 1024, 'h'),
                ReplicationVector::OfTotal(3));
  const BlockRecord* record = FirstBlock("/f");
  ASSERT_NE(record, nullptr);
  WorkerId victim = WorkerOfMedium(cluster_.get(), record->locations[0]);
  // The victim's heartbeats vanish. From the master's side that is
  // indistinguishable from a crash: after the worker timeout the
  // liveness check declares it dead even though the process is fine.
  faults_->Arm({.site = Site::kHeartbeat, .worker = victim});
  AdvanceSim(cluster_.get(), 31.0);  // worker_timeout is 30 s
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  EXPECT_GE(faults_->hits(Site::kHeartbeat), 1);
  std::vector<WorkerId> dead = cluster_->master()->CheckWorkerLiveness();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], victim);
  // The block repairs around the silenced worker.
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  const BlockRecord* repaired = FirstBlock("/f");
  ASSERT_NE(repaired, nullptr);
  EXPECT_EQ(repaired->locations.size(), 3u);
  for (MediumId m : repaired->locations) {
    EXPECT_NE(WorkerOfMedium(cluster_.get(), m), victim);
  }
}

// ---------------------------------------------------------------------------
// Command redelivery (tentpole): the delivered-but-unexecuted crash window

TEST(CommandRedeliveryTest, CrashMidCommandsIsRedeliveredAfterTimeout) {
  ClusterSpec spec = SmallSpec();
  spec.master.command_timeout_micros = 1 * kMicrosPerSecond;
  auto cluster = std::move(Cluster::Create(spec)).value();
  FaultRegistry faults(1);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  std::string content(256 * 1024, 'x');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  ASSERT_TRUE(located.ok());
  BlockId block = (*located)[0].block.id;
  WorkerId lost = (*located)[0].locations[0].worker;
  cluster->StopWorker(lost);
  // The monitor queues a repair copy; find its target worker.
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  auto inflight = cluster->master()->InflightCopiesForTest();
  ASSERT_EQ(inflight.size(), 1u);
  WorkerId target = WorkerOfMedium(cluster.get(), inflight[0].second);
  ASSERT_NE(target, kInvalidWorker);

  // The target receives the copy command and dies before executing it —
  // the command is delivered but never acknowledged.
  faults.Arm({.site = Site::kCrashMidCommands, .worker = target,
              .max_hits = 1});
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_EQ(faults.hits(Site::kCrashMidCommands), 1);
  EXPECT_TRUE(cluster->IsStopped(target));
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 2u);
  EXPECT_EQ(cluster->master()->commands_redelivered(), 0);

  // The worker process restarts (stores intact). Once the command
  // timeout passes, the master redelivers the unacknowledged copy on the
  // next heartbeat instead of silently dropping it.
  cluster->RestartWorker(target);
  AdvanceSim(cluster.get(), 2.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_GE(cluster->master()->commands_redelivered(), 1);
  record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
  EXPECT_EQ(cluster->master()->NumQueuedCommands(), 0);
  EXPECT_EQ(*fs.ReadFile("/f"), content);
  // The repair plane accounted the whole episode: at least one copy was
  // dispatched for the deficit and the redelivered copy committed.
  const RepairStats& stats = cluster->master()->repair_stats();
  EXPECT_GE(stats.re_replications, 1);
  EXPECT_GE(stats.copies_completed, 1);
}

TEST(CommandRedeliveryTest, DeadTargetInflightCopyIsAbortedAndRescheduled) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs.WriteFile("/f", std::string(256 * 1024, 'd'), options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  BlockId block = (*located)[0].block.id;
  WorkerId lost = (*located)[0].locations[0].worker;
  cluster->StopWorker(lost);
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  auto inflight = cluster->master()->InflightCopiesForTest();
  ASSERT_EQ(inflight.size(), 1u);
  WorkerId target = WorkerOfMedium(cluster.get(), inflight[0].second);

  // The copy's target crashes silently before its heartbeat delivers the
  // command. After the worker timeout the liveness check must release
  // the in-flight reservation and drop the queued command, so the
  // monitor can re-plan the repair elsewhere.
  cluster->CrashWorkerSilently(target);
  AdvanceSim(cluster.get(), 31.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  std::vector<WorkerId> dead = cluster->master()->CheckWorkerLiveness();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], target);
  EXPECT_TRUE(cluster->master()->InflightCopiesForTest().empty());

  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->locations.size(), 3u);
  for (MediumId m : record->locations) {
    WorkerId w = WorkerOfMedium(cluster.get(), m);
    EXPECT_NE(w, lost);
    EXPECT_NE(w, target);
  }
  // The aborted copy was charged as a target loss (no backoff penalty —
  // the failure says nothing about the block) and the re-plan committed.
  const RepairStats& stats = cluster->master()->repair_stats();
  EXPECT_GE(stats.target_losses, 1);
  EXPECT_GE(stats.copies_completed, 1);
  EXPECT_GE(stats.re_replications, 2);
}

// ---------------------------------------------------------------------------
// Satellite 1 regression: a dead worker's block report must not be
// processed (it would resurrect replicas the master already wrote off).

TEST(BlockReportTest, StoppedWorkerReportDoesNotResurrectReplicas) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs.WriteFile("/f", std::string(256 * 1024, 'b'), options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  BlockId block = (*located)[0].block.id;
  const PlacedReplica lost = (*located)[0].locations[0];
  cluster->StopWorker(lost.worker);
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       lost.medium),
            0);

  // Pre-fix, SendBlockReports polled every worker including stopped
  // ones, re-adopting the dead worker's replica here.
  ASSERT_TRUE(cluster->SendBlockReports().ok());
  record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       lost.medium),
            0);
}

// ---------------------------------------------------------------------------
// Satellite 5: full crash -> timeout -> restart -> revival lifecycle

TEST(WorkerLifecycleTest, CrashTimeoutRestartRevival) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  std::string content(256 * 1024, 'l');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());
  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  BlockId block = (*located)[0].block.id;
  WorkerId victim = (*located)[0].locations[0].worker;

  // Crash without telling the master; nothing changes until the worker
  // timeout elapses and the liveness check runs.
  cluster->CrashWorkerSilently(victim);
  EXPECT_TRUE(cluster->master()->cluster_state().FindWorker(victim)->alive);
  AdvanceSim(cluster.get(), 31.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  std::vector<WorkerId> dead = cluster->master()->CheckWorkerLiveness();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], victim);

  // Repair proceeds around the dead worker.
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_EQ(record->locations.size(), 3u);
  for (MediumId m : record->locations) {
    EXPECT_NE(WorkerOfMedium(cluster.get(), m), victim);
  }
  EXPECT_EQ(*fs.ReadFile("/f"), content);

  // The worker restarts with its stores intact; its first heartbeat
  // revives it, and its block report re-adopts the stale replica, which
  // the monitor then trims as over-replication.
  cluster->RestartWorker(victim);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_TRUE(cluster->master()->cluster_state().FindWorker(victim)->alive);
  ASSERT_TRUE(cluster->SendBlockReports().ok());
  record = cluster->master()->block_manager().Find(block);
  EXPECT_EQ(record->locations.size(), 4u);
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  record = cluster->master()->block_manager().Find(block);
  EXPECT_EQ(record->locations.size(), 3u);
  EXPECT_EQ(*fs.ReadFile("/f"), content);
}

// ---------------------------------------------------------------------------
// Satellite 2 regression: short replicas (size != committed length)

TEST(ShortReplicaTest, ShortReplicaIsReportedAndReadFailsOver) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  std::string content(512 * 1024, 's');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());
  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  BlockId block = (*located)[0].block.id;
  // Truncate two of the three replicas (internally consistent bytes with
  // a fresh checksum — only the length betrays them).
  for (int i = 0; i < 2; ++i) {
    const PlacedReplica& victim = (*located)[0].locations[i];
    ASSERT_TRUE(cluster->worker(victim.worker)
                    ->WriteBlock(victim.medium, block, content.substr(0, 100))
                    .ok());
  }
  // The read skips both short replicas (reporting them bad) and serves
  // the full bytes from the surviving one.
  EXPECT_EQ(*fs.ReadFile("/f"), content);
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 1u);
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  EXPECT_EQ(cluster->master()->block_manager().Find(block)->locations.size(),
            3u);
}

TEST(ShortReplicaTest, SingleShortReplicaReturnsBoundedError) {
  // Pre-fix, FileReader::Pread spun forever on a truncated sole replica
  // (available == 0 => take == 0 => no progress). The ctest TIMEOUT on
  // this binary turns that hang into a failure.
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  options.rep_vector = ReplicationVector::OfTotal(1);
  std::string content(512 * 1024, '1');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());
  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  const PlacedReplica only = (*located)[0].locations[0];
  ASSERT_TRUE(cluster->worker(only.worker)
                  ->WriteBlock(only.medium, (*located)[0].block.id,
                               content.substr(0, 100))
                  .ok());
  auto read = fs.ReadFile("/f");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsIoError());
}

// ---------------------------------------------------------------------------
// Satellite 3 regression: a reader's open-time location snapshot goes
// stale; it must re-fetch from the master before declaring the block lost.

TEST(StaleLocationsTest, ReaderRefreshesLocationsFromMaster) {
  ClusterSpec spec = SmallSpec();
  spec.num_racks = 2;
  spec.workers_per_rack = 2;  // 4 workers
  auto cluster = std::move(Cluster::Create(spec)).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  options.rep_vector = ReplicationVector::OfTotal(2);
  std::string content(512 * 1024, 'z');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  // Snapshot the two locations, then migrate the block: replicate to all
  // four workers and crash the two snapshotted ones.
  auto reader = fs.Open("/f");
  ASSERT_TRUE(reader.ok());
  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  std::set<WorkerId> snapshot;
  for (const PlacedReplica& r : (*located)[0].locations) {
    snapshot.insert(r.worker);
  }
  ASSERT_EQ(snapshot.size(), 2u);
  ASSERT_TRUE(fs.SetReplication("/f", ReplicationVector::OfTotal(4)).ok());
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  for (WorkerId w : snapshot) cluster->StopWorker(w);

  // Every location the reader knows is down; pre-fix this returned
  // IoError despite two healthy replicas existing.
  auto data = (*reader)->ReadAll();
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, content);
  EXPECT_GE((*reader)->locations_refreshed(), 1);
}

// ---------------------------------------------------------------------------
// TransferEngine: transient vs permanent source faults, slow media

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(SmallSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    faults_ = std::make_unique<FaultRegistry>(77);
    cluster_->InstallFaultRegistry(faults_.get());
    engine_ = std::make_unique<workload::TransferEngine>(cluster_.get());
  }

  /// Writes a virtual file through the engine and waits for it.
  void EngineWrite(const std::string& path, int64_t bytes, int rf) {
    Status result = Status::Internal("pending");
    engine_->WriteFileAsync(path, bytes, 64 * kMiB,
                            ReplicationVector::OfTotal(rf),
                            NetworkLocation("rack0", "node0"),
                            [&](Status st) { result = st; });
    cluster_->simulation()->RunUntilIdle();
    ASSERT_TRUE(result.ok()) << result.ToString();
  }

  /// Monitor + timed command pump until quiescent.
  void PumpToQuiescence() {
    for (int round = 0; round < 20; ++round) {
      int queued = cluster_->master()->RunReplicationMonitor();
      auto started = engine_->PumpCommandsTimed();
      ASSERT_TRUE(started.ok());
      cluster_->simulation()->RunUntilIdle();
      if (queued == 0 && *started == 0) return;
    }
    FAIL() << "no quiescence after 20 rounds";
  }

  BlockId OnlyBlock(const std::string& path) {
    auto located = cluster_->master()->GetBlockLocations(
        path, NetworkLocation("rack0", "node0"));
    EXPECT_TRUE(located.ok());
    EXPECT_EQ(located->size(), 1u);
    return (*located)[0].block.id;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FaultRegistry> faults_;
  std::unique_ptr<workload::TransferEngine> engine_;
};

TEST_F(EngineFaultTest, TransientSourceFaultUsesAnotherSource) {
  EngineWrite("/t", 64 * kMiB, 2);
  BlockId block = OnlyBlock("/t");
  faults_->Arm({.site = Site::kTransferSource, .max_hits = 1,
                .transient = true});
  ASSERT_TRUE(cluster_->master()
                  ->SetReplication("/t", ReplicationVector::OfTotal(3),
                                   UserContext{"root", {}})
                  .ok());
  PumpToQuiescence();
  EXPECT_EQ(faults_->hits(Site::kTransferSource), 1);
  const BlockRecord* record = cluster_->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  // The copy succeeded from the other source, and the transiently
  // failing replica was not written off.
  EXPECT_EQ(record->locations.size(), 3u);
}

TEST_F(EngineFaultTest, PermanentSourceFaultReportsReplicaBad) {
  EngineWrite("/p", 64 * kMiB, 2);
  BlockId block = OnlyBlock("/p");
  faults_->Arm({.site = Site::kTransferSource, .max_hits = 1,
                .code = StatusCode::kCorruption, .transient = false});
  ASSERT_TRUE(cluster_->master()
                  ->SetReplication("/p", ReplicationVector::OfTotal(3),
                                   UserContext{"root", {}})
                  .ok());
  // SetReplication queued the copy; the engine consults the fault when
  // picking its source.
  auto started = engine_->PumpCommandsTimed();
  ASSERT_TRUE(started.ok());
  cluster_->simulation()->RunUntilIdle();
  EXPECT_EQ(faults_->hits(Site::kTransferSource), 1);
  // The bad source was reported (dropping one of the two original
  // replicas) and the copy was served from the survivor: 2 replicas now,
  // where a transient fault would have left 3.
  const BlockRecord* record = cluster_->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 2u);
  // The monitor finishes the repair.
  PumpToQuiescence();
  record = cluster_->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
}

TEST_F(EngineFaultTest, MediumThrottleSlowsTimedReads) {
  EngineWrite("/slow", 64 * kMiB, 1);
  auto located = cluster_->master()->GetBlockLocations(
      "/slow", NetworkLocation("rack1", "node0"));
  ASSERT_TRUE(located.ok());
  const PlacedReplica source = (*located)[0].locations[0];

  auto timed_read = [&]() {
    double start = cluster_->simulation()->now();
    Status result = Status::Internal("pending");
    engine_->ReadFileAsync("/slow", NetworkLocation("rack1", "node0"),
                           [&](Status st) { result = st; });
    cluster_->simulation()->RunUntilIdle();
    EXPECT_TRUE(result.ok()) << result.ToString();
    return cluster_->simulation()->now() - start;
  };

  double healthy = timed_read();
  ASSERT_GT(healthy, 0.0);
  // The source medium degrades to a tenth of its device rate.
  faults_->Arm({.site = Site::kMediumThrottle, .worker = source.worker,
                .medium = source.medium, .throttle_factor = 0.1});
  double throttled = timed_read();
  EXPECT_GT(throttled, 2.0 * healthy);
  faults_->ClearAll();
  EXPECT_NEAR(timed_read(), healthy, healthy * 0.01);
}

// ---------------------------------------------------------------------------
// Seeded chaos: concurrent crashes, corruption, dropped control traffic.
// Invariant: with fewer concurrent failures than the replication factor,
// no committed byte is ever lost, and the cluster converges back to full
// replication once the faults clear.

struct ChaosSummary {
  int64_t fault_hits = 0;
  int reads_ok = 0;
  int recovery_rounds = 0;
  size_t content_hash = 0;

  bool operator==(const ChaosSummary& other) const {
    return fault_hits == other.fault_hits && reads_ok == other.reads_ok &&
           recovery_rounds == other.recovery_rounds &&
           content_hash == other.content_hash;
  }
};

ChaosSummary RunChaos(uint64_t seed) {
  ChaosSummary summary;
  ClusterSpec spec = SmallSpec();
  auto cluster = std::move(Cluster::Create(spec)).value();
  FaultRegistry faults(seed);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  fs.set_read_retry_options(ReadRetryOptions{});

  // Six files, three 128 KiB blocks each, RF 3.
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 6; ++i) {
    std::string path = "/chaos/f" + std::to_string(i);
    std::string content(3 * 128 * 1024,
                        static_cast<char>('a' + (i + seed) % 26));
    CreateOptions options;
    options.block_size = 128 * 1024;
    EXPECT_TRUE(fs.WriteFile(path, content, options).ok());
    expected[path] = content;
  }

  Random rng(seed * 31 + 17);
  const std::vector<WorkerId>& ids = cluster->worker_ids();
  auto stopped_count = [&] {
    int n = 0;
    for (WorkerId id : ids) n += cluster->IsStopped(id) ? 1 : 0;
    return n;
  };
  // True when every block of the file has a registered replica on a live
  // worker — the reachability precondition for asserting a read.
  auto reachable = [&](const std::string& path) {
    auto located = fs.GetFileBlockLocations(
        path, 0, static_cast<int64_t>(expected[path].size()));
    if (!located.ok()) return false;
    for (const LocatedBlock& lb : *located) {
      bool live = false;
      for (const PlacedReplica& r : lb.locations) {
        if (!cluster->IsStopped(r.worker)) live = true;
      }
      if (!live) return false;
    }
    return true;
  };

  for (int round = 0; round < 40; ++round) {
    switch (rng.Uniform(8)) {
      case 0: {  // crash a worker (keep concurrent failures < RF)
        if (stopped_count() >= 2) break;
        WorkerId id = ids[rng.Uniform(ids.size())];
        if (!cluster->IsStopped(id)) cluster->StopWorker(id);
        break;
      }
      case 1: {  // restart one stopped worker
        for (WorkerId id : ids) {
          if (cluster->IsStopped(id)) {
            cluster->RestartWorker(id);
            break;
          }
        }
        break;
      }
      case 2: {  // corrupt a replica of a fully replicated block
        auto it = expected.begin();
        std::advance(it, rng.Uniform(expected.size()));
        auto located = fs.GetFileBlockLocations(
            it->first, 0, static_cast<int64_t>(it->second.size()));
        if (!located.ok() || located->empty()) break;
        const LocatedBlock& lb =
            (*located)[rng.Uniform(located->size())];
        if (lb.locations.size() < 3) break;  // keep >= 2 intact copies
        const PlacedReplica& victim =
            lb.locations[rng.Uniform(lb.locations.size())];
        if (cluster->IsStopped(victim.worker)) break;
        (void)cluster->worker(victim.worker)
            ->CorruptBlock(victim.medium, lb.block.id);
        break;
      }
      case 3:  // lose one heartbeat of a random worker
        faults.Arm({.site = Site::kHeartbeat,
                    .worker = ids[rng.Uniform(ids.size())], .max_hits = 1});
        break;
      case 4:  // a worker's stores go flaky for a few operations
        faults.Arm({.site = Site::kStoreRead,
                    .worker = ids[rng.Uniform(ids.size())],
                    .probability = 0.5, .max_hits = 3});
        break;
      case 5:  // lose one block report
        faults.Arm({.site = Site::kBlockReport,
                    .worker = ids[rng.Uniform(ids.size())], .max_hits = 1});
        break;
      case 6: {  // a worker crashes mid-round (at most 2 down at once)
        if (stopped_count() >= 2) break;
        faults.Arm({.site = Site::kWorkerCrash,
                    .worker = ids[rng.Uniform(ids.size())], .max_hits = 1});
        break;
      }
      case 7: {  // read a reachable file and verify its bytes
        auto it = expected.begin();
        std::advance(it, rng.Uniform(expected.size()));
        if (!reachable(it->first)) break;
        auto data = fs.ReadFile(it->first);
        EXPECT_TRUE(data.ok())
            << it->first << ": " << data.status().ToString();
        if (data.ok()) {
          EXPECT_EQ(*data, it->second) << it->first;
          ++summary.reads_ok;
        }
        break;
      }
    }
    // One control-plane round: repair planning, heartbeats/commands,
    // periodic reports and scrubbing.
    cluster->master()->RunReplicationMonitor();
    EXPECT_TRUE(cluster->PumpHeartbeats().ok());
    if (round % 4 == 3) {
      EXPECT_TRUE(cluster->SendBlockReports().ok());
      EXPECT_TRUE(cluster->RunScrubber().ok());
    }
  }

  // Faults clear, everything restarts; the cluster must converge.
  faults.ClearAll();
  for (WorkerId id : ids) {
    if (cluster->IsStopped(id)) cluster->RestartWorker(id);
  }
  EXPECT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_TRUE(cluster->SendBlockReports().ok());
  EXPECT_TRUE(cluster->RunScrubber().ok());
  auto rounds = cluster->RunReplicationToQuiescence(50);
  EXPECT_TRUE(rounds.ok());
  summary.recovery_rounds = *rounds;
  EXPECT_LT(summary.recovery_rounds, 50);
  // A second report/scrub pass catches replicas adopted or corrupted in
  // the last moments of the chaos phase.
  EXPECT_TRUE(cluster->SendBlockReports().ok());
  EXPECT_TRUE(cluster->RunScrubber().ok());
  EXPECT_TRUE(cluster->RunReplicationToQuiescence(50).ok());

  // No data loss, full replication, clean scrub.
  for (const auto& [path, content] : expected) {
    auto data = fs.ReadFile(path);
    EXPECT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    if (data.ok()) {
      EXPECT_EQ(*data, content) << path;
      summary.content_hash ^= std::hash<std::string>{}(*data) +
                              0x9e3779b97f4a7c15ULL +
                              (summary.content_hash << 6);
    }
    auto located = fs.GetFileBlockLocations(
        path, 0, static_cast<int64_t>(content.size()));
    EXPECT_TRUE(located.ok());
    for (const LocatedBlock& lb : *located) {
      EXPECT_EQ(lb.locations.size(), 3u) << path;
    }
  }
  EXPECT_EQ(*cluster->RunScrubber(), 0);
  summary.fault_hits = faults.total_hits();
  return summary;
}

TEST(FaultChaosTest, Seed101) { RunChaos(101); }
TEST(FaultChaosTest, Seed202) { RunChaos(202); }
TEST(FaultChaosTest, Seed303) { RunChaos(303); }

TEST(FaultChaosTest, SameSeedSameSchedule) {
  EXPECT_TRUE(RunChaos(101) == RunChaos(101));
}

}  // namespace
}  // namespace octo
