// Tests for the client-side federation facade: routing, cross-mount
// rename rejection, independent namespaces, and aggregated tier reports.

#include <gtest/gtest.h>

#include "client/federated_file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 2;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 64 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd, hdd};
  return spec;
}

class FederatedFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      auto cluster = Cluster::Create(SmallSpec());
      ASSERT_TRUE(cluster.ok());
      clusters_.push_back(std::move(cluster).value());
      clients_.push_back(std::make_unique<FileSystem>(
          clusters_.back().get(), NetworkLocation("rack0", "node0")));
    }
    ASSERT_TRUE(fed_.Mount("/warehouse", clients_[0].get()).ok());
    ASSERT_TRUE(fed_.Mount("/logs", clients_[1].get()).ok());
  }

  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<std::unique_ptr<FileSystem>> clients_;
  FederatedFileSystem fed_;
};

TEST_F(FederatedFsTest, OperationsRouteToTheOwningCluster) {
  CreateOptions options;
  options.block_size = kMiB;
  options.rep_vector = ReplicationVector::OfTotal(2);
  ASSERT_TRUE(fed_.WriteFile("/warehouse/t1", "warehouse-data", options).ok());
  ASSERT_TRUE(fed_.WriteFile("/logs/app.log", "log-data", options).ok());

  // Each file lives only on its own cluster.
  EXPECT_TRUE(clients_[0]->Exists("/warehouse/t1"));
  EXPECT_FALSE(clients_[1]->Exists("/warehouse/t1"));
  EXPECT_TRUE(clients_[1]->Exists("/logs/app.log"));
  EXPECT_FALSE(clients_[0]->Exists("/logs/app.log"));

  EXPECT_EQ(*fed_.ReadFile("/warehouse/t1"), "warehouse-data");
  EXPECT_EQ(*fed_.ReadFile("/logs/app.log"), "log-data");
  EXPECT_EQ(fed_.GetFileStatus("/logs/app.log")->length, 8);
  EXPECT_EQ(fed_.GetFileBlockLocations("/warehouse/t1", 0, 100)->size(), 1u);
}

TEST_F(FederatedFsTest, UnmountedPathsAreNotFound) {
  EXPECT_TRUE(fed_.Mkdirs("/elsewhere/x").IsNotFound());
  EXPECT_FALSE(fed_.Exists("/elsewhere/x"));
  EXPECT_TRUE(fed_.Route("/").status().IsNotFound());
}

TEST_F(FederatedFsTest, RenameWithinMountWorksAcrossDoesNot) {
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fed_.WriteFile("/warehouse/a", "x", options).ok());
  ASSERT_TRUE(fed_.Rename("/warehouse/a", "/warehouse/b").ok());
  EXPECT_TRUE(fed_.Exists("/warehouse/b"));
  EXPECT_TRUE(
      fed_.Rename("/warehouse/b", "/logs/b").IsNotSupported());
}

TEST_F(FederatedFsTest, LongestPrefixWins) {
  // A third client mounted deeper inside /warehouse.
  auto cluster = Cluster::Create(SmallSpec());
  ASSERT_TRUE(cluster.ok());
  FileSystem inner(cluster->get(), NetworkLocation("rack0", "node0"));
  ASSERT_TRUE(fed_.Mount("/warehouse/archive", &inner).ok());
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fed_.WriteFile("/warehouse/archive/old", "cold", options).ok());
  EXPECT_TRUE(inner.Exists("/warehouse/archive/old"));
  EXPECT_FALSE(clients_[0]->Exists("/warehouse/archive/old"));
}

TEST_F(FederatedFsTest, SetReplicationRoutes) {
  CreateOptions options;
  options.block_size = kMiB;
  options.rep_vector = ReplicationVector::Of(0, 0, 1);
  ASSERT_TRUE(fed_.WriteFile("/logs/rep", "data", options).ok());
  ASSERT_TRUE(
      fed_.SetReplication("/logs/rep", ReplicationVector::Of(0, 0, 2)).ok());
  ASSERT_TRUE(clusters_[1]->RunReplicationToQuiescence().ok());
  EXPECT_EQ(fed_.GetFileBlockLocations("/logs/rep", 0, 4)
                ->at(0)
                .locations.size(),
            2u);
}

TEST_F(FederatedFsTest, TierReportsAggregateAcrossClusters) {
  auto reports = fed_.GetStorageTierReports();
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 1u);  // both clusters expose only HDD
  const StorageTierReport& hdd = (*reports)[0];
  EXPECT_EQ(hdd.num_media, 8);    // 2 clusters x 2 workers x 2 HDDs
  EXPECT_EQ(hdd.num_workers, 4);
  EXPECT_EQ(hdd.capacity_bytes, 8 * 64 * kMiB);
  EXPECT_NEAR(ToMBps(hdd.avg_write_bps), 126.0, 0.1);
}

TEST_F(FederatedFsTest, MountValidation) {
  EXPECT_TRUE(fed_.Mount("relative", clients_[0].get()).IsInvalidArgument());
  EXPECT_TRUE(fed_.Mount("/x", nullptr).IsInvalidArgument());
  EXPECT_TRUE(
      fed_.Mount("/warehouse", clients_[1].get()).IsAlreadyExists());
  ASSERT_TRUE(fed_.Unmount("/logs").ok());
  EXPECT_TRUE(fed_.Unmount("/logs").IsNotFound());
  EXPECT_EQ(fed_.MountPoints(), (std::vector<std::string>{"/warehouse"}));
}

}  // namespace
}  // namespace octo
