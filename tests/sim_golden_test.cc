// Golden determinism test for the flow simulator: a fixed multi-tier
// cluster of resources, a scripted sequence of replication-pipeline
// writes, reads, timers, cancellations and chained starts must
// reproduce exactly the checked-in completion order, timestamps and
// per-resource byte totals. The expectations were captured on the
// original (whole-system progressive-filling, eager accounting)
// implementation, so solver rewrites (incremental recomputation, lazy
// progress, completion heaps) can be validated as pure optimizations:
// any diff here is a semantic regression, not tuning.
//
// Same pattern as tests/placement_golden_test.cc. Timestamps are
// serialized at nanosecond precision and byte totals at six significant
// digits — far coarser than the ~1e-12 relative float jitter that
// different-but-equivalent summation orders can introduce, and far
// finer than any real behavioural change.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace octo {
namespace {

using sim::FlowId;
using sim::ResourceId;
using sim::Simulation;

// Captured from the pre-rewrite solver. Regenerate only if the scenario
// itself changes, never to paper over a solver difference.
constexpr const char* kGolden =
    "z@0.000000000;t2.0:active=6;r0@2.209944751;c0@3.000000000;"
    "r2@3.300000000;timer2;p1@5.158730159;p2@5.968750000;p0@6.278846154;"
    "p3@9.794471154;end@9.794471154;bytes:client_out=2600,w0_in=2600,"
    "w0_out=2550,w0_mem_w=1250,w0_mem_r=0,w0_ssd_w=700,w0_ssd_r=600,"
    "w0_hdd_w=650,w0_hdd_r=0,w1_in=2600,w1_out=1850,w1_mem_w=650,"
    "w1_mem_r=0,w1_ssd_w=800,w1_ssd_r=0,w1_hdd_w=1150,w1_hdd_r=400,"
    "w2_in=2600,w2_out=1874,w2_mem_w=700,w2_mem_r=0,w2_ssd_w=1100,"
    "w2_ssd_r=0,w2_hdd_w=816.25,w2_hdd_r=74,core=16.25;";

struct GoldenRig {
  Simulation sim;
  ResourceId client_out;
  // Per worker: nic in/out and write/read sides of memory, SSD, HDD.
  struct W {
    ResourceId in, out, mem_w, mem_r, ssd_w, ssd_r, hdd_w, hdd_r;
  };
  std::vector<W> w;
  ResourceId core;
  std::vector<std::pair<std::string, ResourceId>> all;

  GoldenRig() {
    auto add = [&](const std::string& name, double cap) {
      ResourceId id = sim.AddResource(name, cap);
      all.emplace_back(name, id);
      return id;
    };
    client_out = add("client_out", 1000);
    // Distinct capacities everywhere so no two resources ever tie.
    for (int i = 0; i < 3; ++i) {
      std::string p = "w" + std::to_string(i) + "_";
      W wk;
      wk.in = add(p + "in", 900 + 17 * i);
      wk.out = add(p + "out", 880 + 13 * i);
      wk.mem_w = add(p + "mem_w", 500 + 7 * i);
      wk.mem_r = add(p + "mem_r", 600 + 11 * i);
      wk.ssd_w = add(p + "ssd_w", 340 + 5 * i);
      wk.ssd_r = add(p + "ssd_r", 420 + 3 * i);
      wk.hdd_w = add(p + "hdd_w", 126 + 2 * i);
      wk.hdd_r = add(p + "hdd_r", 177 + 4 * i);
      w.push_back(wk);
    }
    core = add("core", 4000);
  }

  /// A 3-replica write pipeline: client -> mem@a -> ssd@b -> hdd@c.
  std::vector<ResourceId> Pipeline(int a, int b, int c) {
    return {client_out, w[a].in,  w[a].mem_w, w[a].out, w[b].in,
            w[b].ssd_w, w[b].out, w[c].in,   w[c].hdd_w};
  }

  /// A remote read from a medium's read side over the serving NIC.
  std::vector<ResourceId> Read(ResourceId medium_read, int worker) {
    return {medium_read, w[worker].out};
  }
};

std::string Fmt(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", t);
  return buf;
}

std::string RunScenario() {
  GoldenRig rig;
  Simulation& sim = rig.sim;
  std::string out;
  auto done = [&out, &sim](const char* tag) {
    return
        [&out, &sim, tag] { out += std::string(tag) + "@" + Fmt(sim.now()) + ";"; };
  };

  constexpr double kCap = 300;  // uniform per-stream cap, like the engine's

  // t=0: two replication pipelines (p0 chains p3 from its completion,
  // exercising id/slot reuse), a remote read, a cap-only stream (models
  // client-side processing crossing no cluster resources) and a
  // zero-byte flow.
  sim.StartFlow(800, rig.Pipeline(0, 1, 2),
                [&] {
                  out += "p0@" + Fmt(sim.now()) + ";";
                  sim.StartFlow(450, rig.Pipeline(0, 2, 1), done("p3"), kCap);
                },
                kCap);
  sim.StartFlow(650, rig.Pipeline(1, 2, 0), done("p1"), kCap);
  sim.StartFlow(400, rig.Read(rig.w[1].hdd_r, 1), done("r0"));
  sim.StartFlow(120, {}, done("c0"), 40);
  sim.StartFlow(0, rig.Pipeline(0, 1, 2), done("z"));

  // A short-lived flow cancelled by a timer before it can finish.
  FlowId hw = sim.StartFlow(250, {rig.w[2].hdd_w, rig.core}, done("hw"));
  sim.Schedule(0.25, [&] {
    sim.CancelFlow(hw);
    EXPECT_EQ(sim.FlowRate(hw), 0.0);
  });

  // Timers interleave with flow completions.
  FlowId r1 = sim::kInvalidFlow;
  sim.Schedule(0.5, [&] {
    sim.StartFlow(700, rig.Pipeline(2, 0, 1), done("p2"), kCap);
    r1 = sim.StartFlow(500, rig.Read(rig.w[2].hdd_r, 2), done("r1"));
  });
  sim.Schedule(0.9, [&] {
    sim.CancelFlow(r1);
    EXPECT_EQ(sim.FlowRate(r1), 0.0);
  });
  sim.Schedule(1.3, [&] {
    sim.StartFlow(600, rig.Read(rig.w[0].ssd_r, 0), done("r2"), kCap);
  });
  sim.Schedule(4.6, [&out] { out += "timer2;"; });

  sim.RunUntil(2.0);
  out += "t2.0:active=" + std::to_string(sim.num_active_flows()) + ";";
  sim.RunUntilIdle();

  out += "end@" + Fmt(sim.now()) + ";bytes:";
  for (size_t i = 0; i < rig.all.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g",
                  sim.ResourceBytesTransferred(rig.all[i].second));
    out += rig.all[i].first + "=" + buf;
    out += i + 1 == rig.all.size() ? ";" : ",";
  }
  return out;
}

TEST(SimGoldenTest, ScriptedScenarioIsBitIdentical) {
  std::string actual = RunScenario();
  EXPECT_EQ(actual, kGolden) << "ACTUAL: " << actual;
}

// Two back-to-back runs from identical inputs must agree with each
// other even if the golden string is regenerated.
TEST(SimGoldenTest, RepeatedRunsAgree) {
  EXPECT_EQ(RunScenario(), RunScenario());
}

}  // namespace
}  // namespace octo
