// Direct unit tests for ClusterState: registration bookkeeping, heartbeat
// statistics, the aggregates the objective functions read, and tier
// reports.

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/cluster_state.h"

namespace octo {
namespace {

class ClusterStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    state_.AddTier({kMemoryTier, "Memory", MediaType::kMemory});
    state_.AddTier({kHddTier, "HDD", MediaType::kHdd});
    AddWorker(0, "r1", "n1");
    AddWorker(1, "r1", "n2");
    AddWorker(2, "r2", "n1");
    AddMedium(0, 0, kMemoryTier, MediaType::kMemory, 100, 1000.0);
    AddMedium(1, 0, kHddTier, MediaType::kHdd, 1000, 100.0);
    AddMedium(2, 1, kHddTier, MediaType::kHdd, 1000, 100.0);
    AddMedium(3, 2, kHddTier, MediaType::kHdd, 2000, 160.0);
  }

  void AddWorker(WorkerId id, const char* rack, const char* node) {
    WorkerInfo w;
    w.id = id;
    w.location = NetworkLocation(rack, node);
    w.net_bps = 1e9;
    ASSERT_TRUE(state_.AddWorker(w).ok());
  }

  void AddMedium(MediumId id, WorkerId w, TierId tier, MediaType type,
                 int64_t cap, double bps) {
    MediumInfo m;
    m.id = id;
    m.worker = w;
    m.location = state_.FindWorker(w)->location;
    m.tier = tier;
    m.type = type;
    m.capacity_bytes = cap;
    m.remaining_bytes = cap;
    m.write_bps = bps;
    m.read_bps = bps * 1.5;
    ASSERT_TRUE(state_.AddMedium(m).ok());
  }

  ClusterState state_;
};

TEST_F(ClusterStateTest, RegistrationValidation) {
  WorkerInfo dup;
  dup.id = 0;
  EXPECT_TRUE(state_.AddWorker(dup).IsAlreadyExists());
  MediumInfo orphan;
  orphan.id = 99;
  orphan.worker = 42;  // unknown worker
  EXPECT_TRUE(state_.AddMedium(orphan).IsNotFound());
  MediumInfo dup_medium;
  dup_medium.id = 0;
  dup_medium.worker = 0;
  EXPECT_TRUE(state_.AddMedium(dup_medium).IsAlreadyExists());
}

TEST_F(ClusterStateTest, CountsAndLookups) {
  EXPECT_EQ(state_.NumLiveWorkers(), 3);
  EXPECT_EQ(state_.NumRacks(), 2);
  EXPECT_EQ(state_.NumActiveTiers(), 2);
  EXPECT_EQ(state_.MediaOnTier(kHddTier).size(), 3u);
  EXPECT_EQ(state_.MediaOnWorker(0), (std::vector<MediumId>{0, 1}));
  EXPECT_NE(state_.WorkerAt(NetworkLocation("r1", "n2")), nullptr);
  EXPECT_EQ(state_.WorkerAt(NetworkLocation("r9", "n1")), nullptr);
  EXPECT_EQ(state_.WorkerAt(NetworkLocation()), nullptr);
}

TEST_F(ClusterStateTest, DeathFiltersAggregates) {
  ASSERT_TRUE(state_.SetWorkerAlive(0, false).ok());
  EXPECT_EQ(state_.NumLiveWorkers(), 2);
  EXPECT_EQ(state_.NumActiveTiers(), 1);  // memory only lived on w0
  EXPECT_FALSE(state_.MediumLive(0));
  EXPECT_FALSE(state_.MediumLive(1));
  EXPECT_TRUE(state_.MediumLive(2));
  EXPECT_EQ(state_.MediaOnTier(kHddTier).size(), 2u);
  EXPECT_EQ(state_.WorkerAt(NetworkLocation("r1", "n1")), nullptr);
}

TEST_F(ClusterStateTest, RemoveWorkerDropsItsMedia) {
  ASSERT_TRUE(state_.RemoveWorker(0).ok());
  EXPECT_EQ(state_.FindMedium(0), nullptr);
  EXPECT_EQ(state_.FindMedium(1), nullptr);
  EXPECT_NE(state_.FindMedium(2), nullptr);
  EXPECT_TRUE(state_.RemoveWorker(0).IsNotFound());
}

TEST_F(ClusterStateTest, StatsUpdatesAndConnections) {
  ASSERT_TRUE(state_.UpdateMediumStats(1, 400, 2).ok());
  EXPECT_EQ(state_.FindMedium(1)->remaining_bytes, 400);
  EXPECT_EQ(state_.FindMedium(1)->nr_connections, 2);
  state_.AddMediumConnections(1, 3);
  EXPECT_EQ(state_.FindMedium(1)->nr_connections, 5);
  state_.AddMediumConnections(1, -10);  // clamps at zero
  EXPECT_EQ(state_.FindMedium(1)->nr_connections, 0);
  state_.AddWorkerConnections(0, 2);
  EXPECT_EQ(state_.FindWorker(0)->nr_connections, 2);
  EXPECT_TRUE(state_.UpdateMediumStats(99, 0, 0).IsNotFound());
}

TEST_F(ClusterStateTest, AdjustRemainingBoundsChecked) {
  ASSERT_TRUE(state_.AdjustMediumRemaining(1, -600).ok());
  EXPECT_EQ(state_.FindMedium(1)->remaining_bytes, 400);
  EXPECT_TRUE(state_.AdjustMediumRemaining(1, -500).IsNoSpace());
  // Over-crediting clamps at capacity.
  ASSERT_TRUE(state_.AdjustMediumRemaining(1, 5000).ok());
  EXPECT_EQ(state_.FindMedium(1)->remaining_bytes, 1000);
}

TEST_F(ClusterStateTest, ObjectiveAggregates) {
  ASSERT_TRUE(state_.UpdateMediumStats(3, 500, 0).ok());  // 25% remaining
  EXPECT_DOUBLE_EQ(state_.MaxRemainingFraction(), 1.0);
  ASSERT_TRUE(state_.UpdateMediumStats(0, 100, 4).ok());
  EXPECT_EQ(state_.MinMediumConnections(), 0);
  ASSERT_TRUE(state_.UpdateMediumStats(1, 1000, 1).ok());
  ASSERT_TRUE(state_.UpdateMediumStats(2, 1000, 2).ok());
  ASSERT_TRUE(state_.UpdateMediumStats(3, 500, 3).ok());
  EXPECT_EQ(state_.MinMediumConnections(), 1);
  // Tier-average throughput: HDD = (100 + 100 + 160) / 3 = 120.
  EXPECT_DOUBLE_EQ(state_.TierAvgWriteBps(kHddTier), 120.0);
  EXPECT_DOUBLE_EQ(state_.TierAvgWriteBps(kMemoryTier), 1000.0);
  EXPECT_DOUBLE_EQ(state_.MaxTierWriteBps(), 1000.0);
  // Dead worker's memory medium drops from the averages.
  ASSERT_TRUE(state_.SetWorkerAlive(0, false).ok());
  EXPECT_DOUBLE_EQ(state_.MaxTierWriteBps(), 130.0);  // (100+160)/2
}

TEST_F(ClusterStateTest, TierReportsAggregateLiveMedia) {
  auto reports = state_.TierReports();
  ASSERT_EQ(reports.size(), 2u);
  const StorageTierReport* hdd = nullptr;
  for (const auto& r : reports) {
    if (r.tier == kHddTier) hdd = &r;
  }
  ASSERT_NE(hdd, nullptr);
  EXPECT_EQ(hdd->num_media, 3);
  EXPECT_EQ(hdd->num_workers, 3);
  EXPECT_EQ(hdd->capacity_bytes, 4000);
  EXPECT_EQ(hdd->remaining_bytes, 4000);
  // A tier with no live media disappears from the report.
  ASSERT_TRUE(state_.SetWorkerAlive(0, false).ok());
  reports = state_.TierReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].tier, kHddTier);
  EXPECT_EQ(reports[0].num_media, 2);
}

TEST_F(ClusterStateTest, SetMediumRates) {
  ASSERT_TRUE(state_.SetMediumRates(2, 111.0, 222.0).ok());
  EXPECT_DOUBLE_EQ(state_.FindMedium(2)->write_bps, 111.0);
  EXPECT_DOUBLE_EQ(state_.FindMedium(2)->read_bps, 222.0);
  EXPECT_TRUE(state_.SetMediumRates(99, 1, 1).IsNotFound());
}

}  // namespace
}  // namespace octo
