// Write-pipeline recovery tests: generation-stamp allocation, journaling
// and failover survival; mid-block pipeline repair that resumes from the
// acked offset instead of retransmitting the block; stale-replica
// exclusion from reads and re-replication; lease-driven block recovery
// (the commitBlockSynchronization analogue) reconciling divergent
// replica lengths; Hflush durability; whole-medium failure; and a seeded
// chaos property test asserting zero acked-or-hflushed byte loss under
// any single injected pipeline/writer/recovery fault.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "common/units.h"
#include "fault/fault.h"

namespace octo {
namespace {

using fault::FaultRegistry;
using fault::FaultSpec;
using fault::Site;

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 3;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd, hdd};
  return spec;
}

/// Advances the cluster's simulated clock (heartbeats, leases, and the
/// command/worker timeouts all read it).
void AdvanceSim(Cluster* cluster, double seconds) {
  cluster->simulation()->Schedule(seconds, [] {});
  cluster->simulation()->RunUntilIdle();
}

WorkerId WorkerOfMedium(Cluster* cluster, MediumId medium) {
  const MediumInfo* info =
      cluster->master()->cluster_state().FindMedium(medium);
  return info != nullptr ? info->worker : kInvalidWorker;
}

struct RbwReplica {
  WorkerId worker = kInvalidWorker;
  MediumId medium = kInvalidMedium;
  ReplicaInfo info;
};

/// Finds every under-construction (RBW) replica in the cluster — the
/// pipeline of the one file a test is writing. Returns the block id via
/// `block_out` (kInvalidBlock when none found).
std::vector<RbwReplica> FindRbwReplicas(Cluster* cluster,
                                        BlockId* block_out) {
  std::vector<RbwReplica> out;
  *block_out = kInvalidBlock;
  for (WorkerId id : cluster->worker_ids()) {
    if (cluster->IsStopped(id)) continue;
    Worker* worker = cluster->worker(id);
    for (const auto& [medium, replicas] : worker->BuildBlockReport()) {
      for (const ReplicaDescriptor& r : replicas) {
        if (r.finalized) continue;
        *block_out = r.block;
        ReplicaInfo info{r.length, r.genstamp, ReplicaState::kRbw};
        out.push_back(RbwReplica{id, medium, info});
      }
    }
  }
  return out;
}

/// Asserts every registered replica of `block` matches the master's
/// record on (genstamp, length) and is finalized.
void ExpectReplicasAgree(Cluster* cluster, BlockId block) {
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr) << "block " << block;
  for (MediumId medium : record->locations) {
    WorkerId w = WorkerOfMedium(cluster, medium);
    ASSERT_NE(w, kInvalidWorker);
    if (cluster->IsStopped(w)) continue;
    auto info = cluster->worker(w)->GetReplicaInfo(medium, block);
    ASSERT_TRUE(info.ok()) << "block " << block << " medium " << medium
                           << ": " << info.status().ToString();
    EXPECT_EQ(info->genstamp, record->genstamp)
        << "block " << block << " medium " << medium;
    EXPECT_EQ(info->length, record->length)
        << "block " << block << " medium " << medium;
    EXPECT_EQ(info->state, ReplicaState::kFinalized)
        << "block " << block << " medium " << medium;
  }
}

// ---------------------------------------------------------------------------
// Generation stamps: allocation, journaling, failover survival

TEST(GenstampTest, MonotonicJournaledAndSurvivesFailover) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;

  auto genstamp_of = [&](const std::string& path) -> uint64_t {
    auto located = fs.GetFileBlockLocations(path, 0, 1);
    EXPECT_TRUE(located.ok());
    return (*located)[0].block.genstamp;
  };

  ASSERT_TRUE(fs.WriteFile("/a", std::string(64 * 1024, 'a'), options).ok());
  uint64_t g1 = genstamp_of("/a");
  EXPECT_GT(g1, 0u);
  ASSERT_TRUE(fs.WriteFile("/b", std::string(64 * 1024, 'b'), options).ok());
  uint64_t g2 = genstamp_of("/b");
  EXPECT_GT(g2, g1);
  EXPECT_GE(cluster->master()->current_genstamp(), g2);

  // A promoted backup must continue the genstamp sequence above every
  // stamp the old primary handed out (like the fencing epoch): a reused
  // stamp would make a stale replica indistinguishable from a fresh one.
  ASSERT_TRUE(cluster->EnableBackup().ok());
  ASSERT_TRUE(fs.WriteFile("/c", std::string(64 * 1024, 'c'), options).ok());
  uint64_t g3 = genstamp_of("/c");
  EXPECT_GT(g3, g2);
  cluster->CrashMaster();
  ASSERT_TRUE(cluster->PromoteBackup().ok());
  ASSERT_TRUE(cluster->SendBlockReports().ok());
  EXPECT_GE(cluster->master()->current_genstamp(), g3);
  ASSERT_TRUE(fs.WriteFile("/d", std::string(64 * 1024, 'd'), options).ok());
  EXPECT_GT(genstamp_of("/d"), g3);
}

// ---------------------------------------------------------------------------
// Tentpole: mid-block pipeline failure resumes from the acked offset

TEST(PipelineRecoveryTest, MidBlockFailureResumesFromAckedOffset) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string first(512 * 1024, 'x');
  const std::string second(512 * 1024, 'y');
  const std::string content = first + second;

  CreateOptions options;
  options.block_size = kMiB;
  auto writer = fs.Create("/f", options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write(first).ok());
  ASSERT_TRUE((*writer)->Hflush().ok());

  BlockId block = kInvalidBlock;
  std::vector<RbwReplica> pipeline = FindRbwReplicas(cluster.get(), &block);
  ASSERT_EQ(pipeline.size(), 3u);
  for (const RbwReplica& r : pipeline) {
    EXPECT_EQ(r.info.length, static_cast<int64_t>(first.size()));
  }
  uint64_t old_genstamp = pipeline[0].info.genstamp;
  const RbwReplica victim = pipeline[0];
  cluster->StopWorker(victim.worker);

  ASSERT_TRUE((*writer)->Write(second).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ((*writer)->pipeline_recoveries(), 1);
  // The acceptance bar: recovery resumed the same block from the acked
  // offset, so the retransmitted bytes stay under one block.
  EXPECT_LT((*writer)->bytes_streamed() -
                static_cast<int64_t>(content.size()),
            options.block_size);
  EXPECT_GE((*writer)->bytes_streamed(),
            static_cast<int64_t>(content.size()));
  EXPECT_EQ(*fs.ReadFile("/f"), content);

  // The recovery stamped the survivors and the replacement with a fresh
  // genstamp; the victim's replica is fenced at the old one.
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->genstamp, old_genstamp);
  EXPECT_EQ(record->locations.size(), 3u);
  EXPECT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       victim.medium),
            0);
  ExpectReplicasAgree(cluster.get(), block);

  // The crashed worker comes back still holding the stale RBW replica;
  // its block report must get it invalidated, never adopted.
  cluster->RestartWorker(victim.worker);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->SendBlockReports().ok());
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());  // delivers the delete
  EXPECT_TRUE(cluster->worker(victim.worker)
                  ->GetReplicaInfo(victim.medium, block)
                  .status()
                  .IsNotFound());
  record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       victim.medium),
            0);
}

// ---------------------------------------------------------------------------
// Staleness: readers skip, re-replication never copies from one

TEST(PipelineRecoveryTest, StaleReplicaIsSkippedByReaderAndInvalidated) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string content(256 * 1024, 's');
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  ASSERT_TRUE(located.ok());
  BlockId block = (*located)[0].block.id;
  uint64_t genstamp = (*located)[0].block.genstamp;
  ASSERT_GT(genstamp, 0u);
  // The replica the reader would try first silently reverts to an older
  // generation (it missed a recovery): same bytes, stale stamp.
  const PlacedReplica stale = (*located)[0].locations[0];
  ASSERT_TRUE(cluster->worker(stale.worker)
                  ->WriteBlock(stale.medium, block, content, genstamp - 1)
                  .ok());

  // The read must skip the stale replica (length alone cannot betray it),
  // report it, and serve the bytes from a fresh one.
  EXPECT_EQ(*fs.ReadFile("/f"), content);
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       stale.medium),
            0);
  EXPECT_EQ(record->locations.size(), 2u);
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  ExpectReplicasAgree(cluster.get(), block);
  EXPECT_EQ(cluster->master()->block_manager().Find(block)->locations.size(),
            3u);
}

TEST(PipelineRecoveryTest, StaleReplicaNeverUsedAsCopySource) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string content(256 * 1024, 'q');
  CreateOptions options;
  options.block_size = kMiB;
  options.rep_vector = ReplicationVector::OfTotal(2);
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  ASSERT_TRUE(located.ok());
  BlockId block = (*located)[0].block.id;
  uint64_t genstamp = (*located)[0].block.genstamp;
  const PlacedReplica stale = (*located)[0].locations[0];
  const PlacedReplica good = (*located)[0].locations[1];
  ASSERT_TRUE(cluster->worker(stale.worker)
                  ->WriteBlock(stale.medium, block, content, genstamp - 1)
                  .ok());

  // The good replica's worker dies; the monitor's only candidate source
  // is the stale replica the master has not yet found out about. The
  // copy executor must refuse it rather than propagate stale bytes.
  cluster->StopWorker(good.worker);
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  int fresh = 0;
  for (WorkerId id : cluster->worker_ids()) {
    if (cluster->IsStopped(id)) continue;
    for (const auto& [medium, replicas] :
         cluster->worker(id)->BuildBlockReport()) {
      for (const ReplicaDescriptor& r : replicas) {
        if (r.block == block && r.genstamp == genstamp) ++fresh;
      }
    }
  }
  EXPECT_EQ(fresh, 0) << "a copy was served from the stale replica";

  // The good worker returns; reports expose the stale replica, and the
  // monitor repairs from the fresh one.
  cluster->RestartWorker(good.worker);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->SendBlockReports().ok());
  AdvanceSim(cluster.get(), 61.0);  // expire the dead in-flight copy
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 2u);
  EXPECT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       stale.medium),
            0);
  ExpectReplicasAgree(cluster.get(), block);
  EXPECT_EQ(*fs.ReadFile("/f"), content);
}

// ---------------------------------------------------------------------------
// Satellite: lease-expiry block recovery reconciles divergent lengths
// (regression for the old trust-whatever-length force-complete)

TEST(LeaseRecoveryTest, DivergentLengthsReconciledToCommonPrefix) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FaultRegistry faults(5);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string flushed(100 * 1024, 'd');

  CreateOptions options;
  options.block_size = kMiB;
  auto writer = fs.Create("/f", options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write(flushed).ok());
  ASSERT_TRUE((*writer)->Hflush().ok());

  BlockId block = kInvalidBlock;
  std::vector<RbwReplica> pipeline = FindRbwReplicas(cluster.get(), &block);
  ASSERT_EQ(pipeline.size(), 3u);
  // One straggler member takes an extra, never-acked packet — the
  // divergence a mid-fan-out writer crash leaves behind.
  const RbwReplica& straggler = pipeline[0];
  ASSERT_TRUE(cluster->worker(straggler.worker)
                  ->WritePacket(straggler.medium, block,
                                static_cast<int64_t>(flushed.size()),
                                std::string(30 * 1024, 'Z'),
                                straggler.info.genstamp)
                  .ok());

  // The writer dies without committing.
  faults.Arm({.site = Site::kWriterCrash, .max_hits = 1});
  ASSERT_TRUE((*writer)->Write("tail").ok());  // buffered, sub-packet
  EXPECT_FALSE((*writer)->Hflush().ok());

  // Lease expiry dispatches a recovery primary; the primary reconciles
  // every survivor to the minimum length (the acked prefix), stamps the
  // recovery genstamp, finalizes, and only then completes the file.
  AdvanceSim(cluster.get(), 61.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());

  auto status = fs.GetFileStatus("/f");
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(status->under_construction);
  EXPECT_EQ(status->length, static_cast<int64_t>(flushed.size()));
  // Pre-tentpole the force-complete committed the straggler's length and
  // re-replicated from an arbitrary replica; now the straggler's extra
  // bytes are truncated and exactly the hflushed bytes survive.
  EXPECT_EQ(*fs.ReadFile("/f"), flushed);
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->genstamp, straggler.info.genstamp);
  EXPECT_EQ(record->length, static_cast<int64_t>(flushed.size()));
  EXPECT_EQ(record->locations.size(), 3u);
  ExpectReplicasAgree(cluster.get(), block);
}

// ---------------------------------------------------------------------------
// Satellite: Hflush durability across a pipeline member crash

TEST(HflushTest, PostHflushWorkerCrashLosesNoFlushedBytes) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FaultRegistry faults(6);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string flushed(100 * 1024, 'h');

  CreateOptions options;
  options.block_size = kMiB;
  auto writer = fs.Create("/f", options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write(flushed).ok());
  ASSERT_TRUE((*writer)->Hflush().ok());

  // A pipeline member crashes after the hflush, then the writer itself
  // dies. The flushed bytes live on the two survivors; lease recovery
  // must complete the file with every one of them.
  BlockId block = kInvalidBlock;
  std::vector<RbwReplica> pipeline = FindRbwReplicas(cluster.get(), &block);
  ASSERT_EQ(pipeline.size(), 3u);
  cluster->StopWorker(pipeline[0].worker);
  faults.Arm({.site = Site::kWriterCrash, .max_hits = 1});
  ASSERT_TRUE((*writer)->Write("unflushed tail").ok());
  EXPECT_FALSE((*writer)->Hflush().ok());

  AdvanceSim(cluster.get(), 61.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());

  auto status = fs.GetFileStatus("/f");
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(status->under_construction);
  EXPECT_EQ(status->length, static_cast<int64_t>(flushed.size()));
  EXPECT_EQ(*fs.ReadFile("/f"), flushed);
  ExpectReplicasAgree(cluster.get(), block);
  // Replication tops the reconciled block back up to three.
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  EXPECT_EQ(cluster->master()->block_manager().Find(block)->locations.size(),
            3u);
}

// ---------------------------------------------------------------------------
// Satellite: whole-medium failure

TEST(MediumFailTest, DeadMediumDroppedAndReReplicated) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FaultRegistry faults(7);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string content(256 * 1024, 'm');
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  ASSERT_TRUE(located.ok());
  BlockId block = (*located)[0].block.id;
  const PlacedReplica dead = (*located)[0].locations[0];
  faults.Arm({.site = Site::kMediumFail, .worker = dead.worker,
              .medium = dead.medium});

  // The worker's next heartbeat reports the failed device; the master
  // drops its replicas and schedules repair elsewhere.
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_FALSE(cluster->master()->cluster_state().MediumLive(dead.medium));
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(std::count(record->locations.begin(), record->locations.end(),
                       dead.medium),
            0);
  ASSERT_TRUE(cluster->RunReplicationToQuiescence().ok());
  record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
  EXPECT_EQ(*fs.ReadFile("/f"), content);

  // New placements avoid the dead device.
  ASSERT_TRUE(fs.WriteFile("/g", content, options).ok());
  auto g = fs.GetFileBlockLocations("/g", 0, 1);
  ASSERT_TRUE(g.ok());
  for (const PlacedReplica& r : (*g)[0].locations) {
    EXPECT_NE(r.medium, dead.medium);
  }
}

// ---------------------------------------------------------------------------
// Recovery primary crash: the lease re-expires and a new primary retries

TEST(LeaseRecoveryTest, RecoveryPrimaryCrashRetriesWithNewPrimary) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FaultRegistry faults(8);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  const std::string flushed(100 * 1024, 'r');

  CreateOptions options;
  options.block_size = kMiB;
  auto writer = fs.Create("/f", options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write(flushed).ok());
  ASSERT_TRUE((*writer)->Hflush().ok());
  BlockId block = kInvalidBlock;
  ASSERT_EQ(FindRbwReplicas(cluster.get(), &block).size(), 3u);
  faults.Arm({.site = Site::kWriterCrash, .max_hits = 1});
  ASSERT_TRUE((*writer)->Write("x").ok());  // buffered, sub-packet
  EXPECT_FALSE((*writer)->Hflush().ok());

  // The first recovery round's primary dies before reconciling anything.
  faults.Arm({.site = Site::kRecoveryPrimaryCrash, .max_hits = 1});
  AdvanceSim(cluster.get(), 61.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_EQ(faults.hits(Site::kRecoveryPrimaryCrash), 1);
  auto status = fs.GetFileStatus("/f");
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->under_construction);

  // The recovery lease expires in turn; the retry picks a new primary
  // from the remaining survivors, with a fresh recovery genstamp.
  AdvanceSim(cluster.get(), 61.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  status = fs.GetFileStatus("/f");
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(status->under_construction);
  EXPECT_EQ(status->length, static_cast<int64_t>(flushed.size()));
  EXPECT_EQ(*fs.ReadFile("/f"), flushed);
  ExpectReplicasAgree(cluster.get(), block);
}

// ---------------------------------------------------------------------------
// Satellite: seeded chaos property — under any single injected
// pipeline/writer/recovery fault, a completed file's bytes equal the
// bytes written, a recovered file's bytes are exactly a committed prefix
// containing every hflushed byte, and all live replicas agree on
// (genstamp, length).

struct ChaosOutcome {
  int completed = 0;
  int recovered = 0;
  size_t content_hash = 0;

  bool operator==(const ChaosOutcome& other) const {
    return completed == other.completed && recovered == other.recovered &&
           content_hash == other.content_hash;
  }
};

void RunPipelineChaos(uint64_t seed, ChaosOutcome* outcome) {
  auto cluster = std::move(Cluster::Create(SmallSpec())).value();
  FaultRegistry faults(seed);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  fs.set_read_retry_options(ReadRetryOptions{});
  Random rng(seed * 131 + 7);
  const std::vector<WorkerId>& ids = cluster->worker_ids();

  std::map<std::string, std::string> finished;  // path -> expected bytes
  for (int round = 0; round < 8; ++round) {
    std::string path = "/chaos/f" + std::to_string(round);
    // Three chunks; the first is hflushed. 256 KiB blocks make most
    // files span block boundaries.
    std::string chunk1(30 * 1024 + rng.Uniform(170 * 1024), 'a' + round);
    std::string chunk2(30 * 1024 + rng.Uniform(170 * 1024), 'A' + round);
    std::string chunk3(30 * 1024 + rng.Uniform(170 * 1024), '0' + round);
    const std::string content = chunk1 + chunk2 + chunk3;

    CreateOptions options;
    options.block_size = 256 * 1024;
    auto writer = fs.Create(path, options);
    ASSERT_TRUE(writer.ok()) << path;

    // One injected fault per round (round 0 is the fault-free control).
    switch (rng.Uniform(5)) {
      case 1:
        faults.Arm({.site = Site::kPipelineNodeCrash,
                    .worker = ids[rng.Uniform(ids.size())], .max_hits = 1});
        break;
      case 2:
        faults.Arm({.site = Site::kWriterCrash, .max_hits = 1});
        break;
      case 3: {
        WorkerId w = ids[rng.Uniform(ids.size())];
        std::vector<MediumId> media = cluster->worker(w)->MediumIds();
        faults.Arm({.site = Site::kMediumFail, .worker = w,
                    .medium = media[rng.Uniform(media.size())]});
        break;
      }
      case 4:
        // A writer crash whose block recovery is itself crash-struck.
        faults.Arm({.site = Site::kWriterCrash, .max_hits = 1});
        faults.Arm({.site = Site::kRecoveryPrimaryCrash, .max_hits = 1});
        break;
      default:
        break;
    }

    int64_t hflushed = 0;
    Status st = (*writer)->Write(chunk1);
    if (st.ok()) {
      st = (*writer)->Hflush();
      if (st.ok()) hflushed = static_cast<int64_t>(chunk1.size());
    }
    if (st.ok()) st = (*writer)->Write(chunk2);
    if (st.ok()) st = (*writer)->Write(chunk3);
    if (st.ok()) st = (*writer)->Close();

    if (st.ok()) {
      auto data = fs.ReadFile(path);
      ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
      EXPECT_EQ(*data, content) << path;
      finished[path] = content;
      ++outcome->completed;
    } else {
      // The writer died; lease recovery must converge to a completed
      // file whose bytes are a prefix of what was written and contain
      // every hflushed byte.
      bool complete = false;
      for (int tries = 0; tries < 6 && !complete; ++tries) {
        AdvanceSim(cluster.get(), 61.0);
        ASSERT_TRUE(cluster->PumpHeartbeats().ok());
        ASSERT_TRUE(cluster->PumpHeartbeats().ok());
        auto status = fs.GetFileStatus(path);
        ASSERT_TRUE(status.ok()) << path;
        complete = !status->under_construction;
      }
      ASSERT_TRUE(complete) << path << " never finished block recovery";
      auto data = fs.ReadFile(path);
      ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
      ASSERT_LE(data->size(), content.size()) << path;
      EXPECT_EQ(*data, content.substr(0, data->size())) << path;
      EXPECT_GE(static_cast<int64_t>(data->size()), hflushed)
          << path << " lost hflushed bytes";
      finished[path] = *data;
      ++outcome->recovered;
    }

    // Faults clear; crashed workers return; the cluster reconverges.
    faults.ClearAll();
    for (WorkerId id : ids) {
      if (cluster->IsStopped(id)) cluster->RestartWorker(id);
    }
    ASSERT_TRUE(cluster->PumpHeartbeats().ok());
    ASSERT_TRUE(cluster->SendBlockReports().ok());
    AdvanceSim(cluster.get(), 61.0);
    ASSERT_TRUE(cluster->PumpHeartbeats().ok());
    ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  }

  // Global invariants: every committed block's live replicas agree with
  // the record on (genstamp, length, finalized), and every file reads
  // back exactly its committed bytes.
  cluster->master()->block_manager().ForEach([&](const BlockRecord& record) {
    ExpectReplicasAgree(cluster.get(), record.id);
  });
  for (const auto& [path, expected] : finished) {
    auto data = fs.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, expected) << path;
    outcome->content_hash ^= std::hash<std::string>{}(*data) +
                             0x9e3779b97f4a7c15ULL +
                             (outcome->content_hash << 6);
  }
  EXPECT_EQ(outcome->completed + outcome->recovered, 8);
}

TEST(PipelineChaosTest, Seed11) {
  ChaosOutcome outcome;
  RunPipelineChaos(11, &outcome);
}
TEST(PipelineChaosTest, Seed22) {
  ChaosOutcome outcome;
  RunPipelineChaos(22, &outcome);
}
TEST(PipelineChaosTest, Seed33) {
  ChaosOutcome outcome;
  RunPipelineChaos(33, &outcome);
}

TEST(PipelineChaosTest, SameSeedSameOutcome) {
  ChaosOutcome first, second;
  RunPipelineChaos(11, &first);
  RunPipelineChaos(11, &second);
  EXPECT_TRUE(first == second);
}

}  // namespace
}  // namespace octo
