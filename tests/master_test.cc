// Unit tests for the Master: registration, heartbeats, block reports,
// the write path with leases, replica reconciliation under SetReplication
// (copies / moves / deletions across tiers), the replication monitor, and
// recovery from a checkpoint.

#include <gtest/gtest.h>

#include <set>

#include "cluster/master.h"
#include "common/clock.h"
#include "common/units.h"
#include "namespacefs/fsimage.h"

namespace octo {
namespace {

const UserContext kRoot{"root", {}};

class MasterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MasterOptions options;
    options.worker_timeout_micros = 1000;
    Rebuild(options);
  }

  // Replaces the master with a freshly-optioned one and re-registers the
  // standard 2-rack x 3-worker topology.
  void Rebuild(const MasterOptions& options) {
    workers_.clear();
    master_ = std::make_unique<Master>(options, &clock_);
    master_->DefineTier({kMemoryTier, "Memory", MediaType::kMemory});
    master_->DefineTier({kSsdTier, "SSD", MediaType::kSsd});
    master_->DefineTier({kHddTier, "HDD", MediaType::kHdd});
    // 2 racks x 3 workers, each with memory + ssd + 2 hdd.
    for (int r = 0; r < 2; ++r) {
      for (int n = 0; n < 3; ++n) {
        auto worker = master_->RegisterWorker(
            NetworkLocation("r" + std::to_string(r), "n" + std::to_string(n)),
            1.25e9);
        ASSERT_TRUE(worker.ok());
        workers_.push_back(*worker);
        AddMedium(*worker, kMemoryTier, MediaType::kMemory, 64 * kMiB, 1900);
        AddMedium(*worker, kSsdTier, MediaType::kSsd, 256 * kMiB, 340);
        AddMedium(*worker, kHddTier, MediaType::kHdd, kGiB, 126);
        AddMedium(*worker, kHddTier, MediaType::kHdd, kGiB, 126);
      }
    }
  }

  void AddMedium(WorkerId worker, TierId tier, MediaType type, int64_t cap,
                 double mbps) {
    MediumSpec spec{tier, type, cap, FromMBps(mbps), FromMBps(mbps * 1.3)};
    auto medium = master_->RegisterMedium(
        worker, spec, ProfiledRates{spec.write_bps, spec.read_bps});
    ASSERT_TRUE(medium.ok());
  }

  // Full write of a 1-block file through the master protocol.
  BlockId WriteOneBlockFile(const std::string& path,
                            const ReplicationVector& rv, int64_t length) {
    EXPECT_TRUE(
        master_->Create(path, rv, 8 * kMiB, false, kRoot, "writer").ok());
    auto located = master_->AddBlock(path, "writer", NetworkLocation());
    EXPECT_TRUE(located.ok()) << located.status().ToString();
    std::vector<MediumId> media;
    for (const PlacedReplica& r : located->locations) {
      media.push_back(r.medium);
    }
    EXPECT_TRUE(master_->CommitBlock(path, "writer", located->block.id,
                                     length, media)
                    .ok());
    EXPECT_TRUE(master_->CompleteFile(path, "writer").ok());
    return located->block.id;
  }

  std::multiset<TierId> TiersOf(BlockId block) {
    std::multiset<TierId> tiers;
    const BlockRecord* record = master_->block_manager().Find(block);
    if (record == nullptr) return tiers;
    for (MediumId m : record->locations) {
      tiers.insert(master_->cluster_state().FindMedium(m)->tier);
    }
    return tiers;
  }

  // Applies all queued commands as if workers executed them instantly.
  void DrainCommands() {
    for (int round = 0; round < 10; ++round) {
      bool any = false;
      for (WorkerId w : workers_) {
        HeartbeatPayload hb;
        hb.worker = w;
        auto commands = master_->Heartbeat(hb);
        ASSERT_TRUE(commands.ok());
        for (const WorkerCommand& cmd : *commands) {
          any = true;
          if (cmd.kind == WorkerCommand::Kind::kCopyReplica) {
            ASSERT_TRUE(
                master_->CommitReplica(cmd.block, cmd.target_medium).ok());
          }
          // Deletions need no confirmation.
        }
      }
      if (!any && master_->RunReplicationMonitor() == 0) break;
    }
  }

  ManualClock clock_;
  std::unique_ptr<Master> master_;
  std::vector<WorkerId> workers_;
};

// ---------------------------------------------------------------------------
// Registration / heartbeats / liveness

TEST_F(MasterTest, RegistrationPopulatesStateAndTopology) {
  EXPECT_EQ(master_->cluster_state().NumLiveWorkers(), 6);
  EXPECT_EQ(master_->cluster_state().NumRacks(), 2);
  EXPECT_EQ(master_->cluster_state().NumActiveTiers(), 3);
  EXPECT_EQ(master_->topology().num_nodes(), 6);
  EXPECT_TRUE(master_->RegisterWorker(NetworkLocation("r0", "n0"), 1e9)
                  .status()
                  .IsAlreadyExists());
}

TEST_F(MasterTest, HeartbeatUpdatesStatsAndRevives) {
  clock_.AdvanceMicros(2000);
  auto dead = master_->CheckWorkerLiveness();
  EXPECT_EQ(dead.size(), 6u);  // nobody heartbeated within the timeout
  HeartbeatPayload hb;
  hb.worker = workers_[0];
  hb.media.push_back(MediumStats{0, 123});
  ASSERT_TRUE(master_->Heartbeat(hb).ok());
  EXPECT_TRUE(master_->cluster_state().FindWorker(workers_[0])->alive);
  EXPECT_EQ(master_->cluster_state().FindMedium(0)->remaining_bytes, 123);
  EXPECT_TRUE(master_->Heartbeat(HeartbeatPayload{99, {}}).status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// Write path

TEST_F(MasterTest, WritePathEnforcesLeases) {
  ASSERT_TRUE(master_->Create("/f", ReplicationVector::OfTotal(3),
                              128 * kMiB, false, kRoot, "w1")
                  .ok());
  EXPECT_TRUE(master_->AddBlock("/f", "w2", NetworkLocation())
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(master_->CompleteFile("/f", "w2").IsPermissionDenied());
  auto located = master_->AddBlock("/f", "w1", NetworkLocation());
  ASSERT_TRUE(located.ok());
  EXPECT_TRUE(master_->CommitBlock("/f", "w2", located->block.id, 1,
                                   {located->locations[0].medium})
                  .IsPermissionDenied());
}

TEST_F(MasterTest, CommitBlockRecordsAndAdjustsSpace) {
  BlockId block = WriteOneBlockFile("/f", ReplicationVector::Of(1, 1, 1),
                                    10 * kMiB);
  const BlockRecord* record = master_->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->length, 10 * kMiB);
  EXPECT_EQ(record->locations.size(), 3u);
  for (MediumId m : record->locations) {
    const MediumInfo* info = master_->cluster_state().FindMedium(m);
    EXPECT_EQ(info->capacity_bytes - info->remaining_bytes, 10 * kMiB);
  }
}

TEST_F(MasterTest, AbandonBlockDropsAllocation) {
  ASSERT_TRUE(master_->Create("/f", ReplicationVector::OfTotal(3),
                              128 * kMiB, false, kRoot, "w")
                  .ok());
  auto located = master_->AddBlock("/f", "w", NetworkLocation());
  ASSERT_TRUE(located.ok());
  ASSERT_TRUE(master_->AbandonBlock("/f", "w", located->block.id).ok());
  EXPECT_TRUE(master_->CommitBlock("/f", "w", located->block.id, 1,
                                   {located->locations[0].medium})
                  .IsNotFound());
}

TEST_F(MasterTest, CommitWithEmptyReplicaSetFails) {
  ASSERT_TRUE(master_->Create("/f", ReplicationVector::OfTotal(3),
                              128 * kMiB, false, kRoot, "w")
                  .ok());
  auto located = master_->AddBlock("/f", "w", NetworkLocation());
  ASSERT_TRUE(located.ok());
  EXPECT_TRUE(
      master_->CommitBlock("/f", "w", located->block.id, 1, {}).IsIoError());
}

TEST_F(MasterTest, ExpiredLeaseForceCompletesFile) {
  MasterOptions options;
  options.lease_duration_micros = 100;
  Master master(options, &clock_);
  auto worker = master.RegisterWorker(NetworkLocation("r0", "n0"), 1e9);
  ASSERT_TRUE(worker.ok());
  MediumSpec spec{kHddTier, MediaType::kHdd, kGiB, 1e8, 1e8};
  ASSERT_TRUE(master.RegisterMedium(*worker, spec, {}).ok());
  ASSERT_TRUE(master.Create("/f", ReplicationVector::OfTotal(1), 128 * kMiB,
                            false, kRoot, "crashed-writer")
                  .ok());
  clock_.AdvanceMicros(200);
  // Any heartbeat triggers lease reaping.
  ASSERT_TRUE(master.Heartbeat(HeartbeatPayload{*worker, {}}).ok());
  EXPECT_FALSE(
      master.GetFileStatus("/f", kRoot)->under_construction);
}

TEST_F(MasterTest, SampledPlacementModePlacesValidReplicas) {
  // MasterOptions::placement_mode routes every MOOP decision through the
  // sublinear sampled enumeration; the protocol-visible behavior (live
  // media, explicit tiers honored, rack spread) must be unchanged.
  MasterOptions options;
  options.worker_timeout_micros = 1000;
  options.placement_mode = PlacementMode::kSampled;
  Rebuild(options);
  for (int i = 0; i < 8; ++i) {
    std::string path = "/sampled" + std::to_string(i);
    BlockId block = WriteOneBlockFile(path, ReplicationVector::Of(1, 1, 1),
                                      4 * kMiB);
    EXPECT_EQ(TiersOf(block),
              (std::multiset<TierId>{kMemoryTier, kSsdTier, kHddTier}));
    const BlockRecord* record = master_->block_manager().Find(block);
    ASSERT_NE(record, nullptr);
    std::set<std::string> racks;
    for (MediumId m : record->locations) {
      const MediumInfo* info = master_->cluster_state().FindMedium(m);
      ASSERT_NE(info, nullptr);
      EXPECT_TRUE(master_->cluster_state().MediumLive(m));
      racks.insert(info->location.rack());
    }
    EXPECT_EQ(racks.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Read path

TEST_F(MasterTest, GetBlockLocationsOrdersAndOffsets) {
  ASSERT_TRUE(master_->Create("/f", ReplicationVector::Of(1, 0, 2),
                              8 * kMiB, false, kRoot, "w")
                  .ok());
  for (int b = 0; b < 2; ++b) {
    auto located = master_->AddBlock("/f", "w", NetworkLocation());
    ASSERT_TRUE(located.ok());
    std::vector<MediumId> media;
    for (const PlacedReplica& r : located->locations) media.push_back(r.medium);
    ASSERT_TRUE(master_->CommitBlock("/f", "w", located->block.id, 5 * kMiB,
                                     media)
                    .ok());
  }
  ASSERT_TRUE(master_->CompleteFile("/f", "w").ok());
  auto blocks = master_->GetBlockLocations("/f", NetworkLocation());
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[0].offset, 0);
  EXPECT_EQ((*blocks)[1].offset, 5 * kMiB);
  // Tier-aware ordering: the memory replica leads.
  EXPECT_EQ((*blocks)[0].locations[0].tier, kMemoryTier);
}

TEST_F(MasterTest, ReportBadBlockRemovesReplicaAndQueuesDelete) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::OfTotal(3), kMiB);
  const BlockRecord* record = master_->block_manager().Find(block);
  MediumId bad = record->locations[0];
  ASSERT_TRUE(master_->ReportBadBlock(block, bad).ok());
  EXPECT_EQ(master_->block_manager().Find(block)->locations.size(), 2u);
  EXPECT_GT(master_->NumQueuedCommands(), 0);
  // The monitor re-replicates back to 3.
  DrainCommands();
  EXPECT_EQ(master_->block_manager().Find(block)->locations.size(), 3u);
}

// ---------------------------------------------------------------------------
// SetReplication reconciliation (paper §2.3/§5 semantics)

TEST_F(MasterTest, SetReplicationCopyToNewTier) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::Of(1, 0, 2), kMiB);
  // <1,0,2> -> <1,1,2>: copy one replica to SSD (4 total).
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::Of(1, 1, 2), kRoot)
          .ok());
  DrainCommands();
  EXPECT_EQ(TiersOf(block), (std::multiset<TierId>{kMemoryTier, kSsdTier,
                                                   kHddTier, kHddTier}));
}

TEST_F(MasterTest, SetReplicationMoveBetweenTiers) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::Of(1, 0, 2), kMiB);
  // <1,0,2> -> <1,1,1>: move one HDD replica to SSD.
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::Of(1, 1, 1), kRoot)
          .ok());
  DrainCommands();
  EXPECT_EQ(TiersOf(block),
            (std::multiset<TierId>{kMemoryTier, kSsdTier, kHddTier}));
}

TEST_F(MasterTest, SetReplicationIncreaseWithinTier) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::Of(0, 0, 2), kMiB);
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::Of(0, 0, 3), kRoot)
          .ok());
  DrainCommands();
  EXPECT_EQ(TiersOf(block),
            (std::multiset<TierId>{kHddTier, kHddTier, kHddTier}));
}

TEST_F(MasterTest, SetReplicationDeleteFromTier) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::Of(1, 0, 2), kMiB);
  // <1,0,2> -> <0,0,2>: drop the in-memory replica.
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::Of(0, 0, 2), kRoot)
          .ok());
  DrainCommands();
  EXPECT_EQ(TiersOf(block), (std::multiset<TierId>{kHddTier, kHddTier}));
}

TEST_F(MasterTest, SetReplicationToUnspecifiedKeepsCount) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::Of(1, 1, 1), kMiB);
  // Tier-pinned -> U=3: existing replicas already satisfy the count; no
  // data movement should be scheduled.
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::OfTotal(3), kRoot)
          .ok());
  EXPECT_EQ(master_->NumQueuedCommands(), 0);
  EXPECT_EQ(TiersOf(block).size(), 3u);
}

TEST_F(MasterTest, MonitorIsIdempotentWhileCopiesInFlight) {
  WriteOneBlockFile("/f", ReplicationVector::Of(0, 0, 2), kMiB);
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::Of(1, 0, 2), kRoot)
          .ok());
  int first = master_->NumQueuedCommands();
  EXPECT_EQ(first, 1);
  // Another monitor round must not duplicate the pending copy.
  EXPECT_EQ(master_->RunReplicationMonitor(), 0);
  EXPECT_EQ(master_->NumQueuedCommands(), 1);
}

TEST_F(MasterTest, InflightCopyExpiresAndIsRescheduled) {
  WriteOneBlockFile("/f", ReplicationVector::Of(0, 0, 2), kMiB);
  ASSERT_TRUE(
      master_->SetReplication("/f", ReplicationVector::Of(1, 0, 2), kRoot)
          .ok());
  // The copy never confirms; after the replication timeout the monitor
  // re-issues it.
  clock_.AdvanceMicros(MasterOptions{}.replication_timeout_micros + 1);
  EXPECT_EQ(master_->RunReplicationMonitor(), 1);
}

// ---------------------------------------------------------------------------
// Block reports

TEST_F(MasterTest, BlockReportDeletesOrphansAdoptsKnownDropsLost) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::OfTotal(3), kMiB);
  const BlockRecord* record = master_->block_manager().Find(block);
  std::vector<MediumId> locations = record->locations;

  // Pick media on worker 0 for the report.
  std::vector<MediumId> w0_media =
      master_->cluster_state().MediaOnWorker(workers_[0]);
  MediumId reporting = w0_media[0];

  bool had_replica_here =
      std::find(locations.begin(), locations.end(), reporting) !=
      locations.end();

  BlockReport report;
  report[reporting] = {
      ReplicaDescriptor{block, record->genstamp, record->length, true},
      ReplicaDescriptor{/*orphan=*/9999, 0, kMiB, true}};
  ASSERT_TRUE(master_->ProcessBlockReport(workers_[0], report).ok());

  // The orphan got a delete command; the known block was adopted if new.
  const BlockRecord* after = master_->block_manager().Find(block);
  EXPECT_TRUE(std::find(after->locations.begin(), after->locations.end(),
                        reporting) != after->locations.end());
  EXPECT_GT(master_->NumQueuedCommands(), 0);
  (void)had_replica_here;

  // A second report omitting the block drops the location again.
  BlockReport empty;
  empty[reporting] = {};
  ASSERT_TRUE(master_->ProcessBlockReport(workers_[0], empty).ok());
  after = master_->block_manager().Find(block);
  EXPECT_TRUE(std::find(after->locations.begin(), after->locations.end(),
                        reporting) == after->locations.end());
}

TEST_F(MasterTest, BlockReportRejectsForeignMedium) {
  BlockReport report;
  report[0] = {};  // medium 0 belongs to workers_[0]
  EXPECT_TRUE(
      master_->ProcessBlockReport(workers_[1], report).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Delete & invalidation

TEST_F(MasterTest, DeleteQueuesInvalidationsAndFreesSpace) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::OfTotal(3), 10 * kMiB);
  auto removed = master_->Delete("/f", false, kRoot);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_EQ(master_->block_manager().Find(block), nullptr);
  EXPECT_EQ(master_->NumQueuedCommands(), 3);
  // Space returned to every medium.
  for (const auto& [id, m] : master_->cluster_state().media()) {
    EXPECT_EQ(m.remaining_bytes, m.capacity_bytes);
  }
}

// ---------------------------------------------------------------------------
// Worker death

TEST_F(MasterTest, DeadWorkerReplicasRebuiltElsewhere) {
  BlockId block =
      WriteOneBlockFile("/f", ReplicationVector::OfTotal(3), kMiB);
  const BlockRecord* record = master_->block_manager().Find(block);
  WorkerId victim =
      master_->cluster_state().FindMedium(record->locations[0])->worker;
  ASSERT_TRUE(master_->cluster_state().SetWorkerAlive(victim, false).ok());
  master_->RunReplicationMonitor();
  DrainCommands();
  const BlockRecord* after = master_->block_manager().Find(block);
  EXPECT_EQ(after->locations.size(), 3u);
  for (MediumId m : after->locations) {
    EXPECT_NE(master_->cluster_state().FindMedium(m)->worker, victim);
  }
}

// ---------------------------------------------------------------------------
// Recovery

TEST_F(MasterTest, LoadImageRebuildsBlockRecords) {
  WriteOneBlockFile("/a/f", ReplicationVector::Of(1, 0, 2), kMiB);
  WriteOneBlockFile("/a/g", ReplicationVector::OfTotal(3), 2 * kMiB);
  std::string image = FsImage::Serialize(master_->namespace_tree());

  MasterOptions options;
  Master fresh(options, &clock_);
  ASSERT_TRUE(fresh.LoadImage(image).ok());
  EXPECT_EQ(fresh.block_manager().NumBlocks(), 2);
  // Records know their expected vectors but have no locations yet.
  fresh.block_manager().ForEach([](const BlockRecord& record) {
    EXPECT_TRUE(record.locations.empty());
    EXPECT_GE(record.expected.total(), 3);
  });
  EXPECT_TRUE(fresh.GetFileStatus("/a/f", kRoot).ok());
}

}  // namespace
}  // namespace octo
