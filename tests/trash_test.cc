// Tests for trash support (HDFS parity): deletes become recoverable moves
// into /.Trash/<user>/, expunge reclaims the space, and skip_trash /
// in-trash deletes destroy immediately.

#include <gtest/gtest.h>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec TrashSpec() {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 3;
  spec.master.enable_trash = true;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 64 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd};
  return spec;
}

class TrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(TrashSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"),
                                       UserContext{"alice", {}});
    CreateOptions options;
    options.block_size = kMiB;
    ASSERT_TRUE(fs_->WriteFile("/docs/a.txt", "contents-a", options).ok());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(TrashTest, DeleteMovesIntoUserTrash) {
  ASSERT_TRUE(fs_->Delete("/docs/a.txt").ok());
  EXPECT_FALSE(fs_->Exists("/docs/a.txt"));
  EXPECT_TRUE(fs_->Exists("/.Trash/alice/a.txt"));
  // Data fully recoverable.
  EXPECT_EQ(*fs_->ReadFile("/.Trash/alice/a.txt"), "contents-a");
  // No blocks were invalidated.
  EXPECT_EQ(cluster_->master()->block_manager().NumBlocks(), 1);
  // Restore = rename back out.
  ASSERT_TRUE(fs_->Rename("/.Trash/alice/a.txt", "/docs/a.txt").ok());
  EXPECT_EQ(*fs_->ReadFile("/docs/a.txt"), "contents-a");
}

TEST_F(TrashTest, NameCollisionsGetSuffixes) {
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs_->Delete("/docs/a.txt").ok());
  ASSERT_TRUE(fs_->WriteFile("/docs/a.txt", "second", options).ok());
  ASSERT_TRUE(fs_->Delete("/docs/a.txt").ok());
  EXPECT_TRUE(fs_->Exists("/.Trash/alice/a.txt"));
  EXPECT_TRUE(fs_->Exists("/.Trash/alice/a.txt.1"));
  EXPECT_EQ(*fs_->ReadFile("/.Trash/alice/a.txt.1"), "second");
}

TEST_F(TrashTest, SkipTrashDestroysImmediately) {
  ASSERT_TRUE(fs_->Delete("/docs/a.txt", /*recursive=*/false,
                          /*skip_trash=*/true)
                  .ok());
  EXPECT_FALSE(fs_->Exists("/.Trash/alice/a.txt"));
  EXPECT_EQ(cluster_->master()->block_manager().NumBlocks(), 0);
}

TEST_F(TrashTest, DeletingFromTrashDestroys) {
  ASSERT_TRUE(fs_->Delete("/docs/a.txt").ok());
  ASSERT_TRUE(fs_->Delete("/.Trash/alice/a.txt").ok());
  EXPECT_FALSE(fs_->Exists("/.Trash/alice/a.txt"));
  EXPECT_EQ(cluster_->master()->block_manager().NumBlocks(), 0);
}

TEST_F(TrashTest, ExpungeReclaimsSpace) {
  ASSERT_TRUE(fs_->Delete("/docs/a.txt").ok());
  ASSERT_TRUE(fs_->ExpungeTrash().ok());
  EXPECT_FALSE(fs_->Exists("/.Trash/alice"));
  EXPECT_EQ(cluster_->master()->block_manager().NumBlocks(), 0);
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  for (WorkerId id : cluster_->worker_ids()) {
    for (auto& [m, blocks] : cluster_->worker(id)->BuildBlockReport()) {
      EXPECT_TRUE(blocks.empty());
    }
  }
  // Expunging an empty/absent trash is fine.
  ASSERT_TRUE(fs_->ExpungeTrash().ok());
}

TEST_F(TrashTest, TrashIsPerUser) {
  FileSystem bob(cluster_.get(), NetworkLocation("rack0", "node1"),
                 UserContext{"bob", {}});
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(bob.WriteFile("/docs/b.txt", "bobs", options).ok());
  ASSERT_TRUE(bob.Delete("/docs/b.txt").ok());
  ASSERT_TRUE(fs_->Delete("/docs/a.txt").ok());
  EXPECT_TRUE(fs_->Exists("/.Trash/alice/a.txt"));
  EXPECT_TRUE(fs_->Exists("/.Trash/bob/b.txt"));
  // Alice's expunge leaves bob's trash alone.
  ASSERT_TRUE(fs_->ExpungeTrash().ok());
  EXPECT_FALSE(fs_->Exists("/.Trash/alice"));
  EXPECT_TRUE(fs_->Exists("/.Trash/bob/b.txt"));
}

TEST_F(TrashTest, DirectoriesGoToTrashToo) {
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs_->WriteFile("/docs/sub/deep.txt", "deep", options).ok());
  ASSERT_TRUE(fs_->Delete("/docs", /*recursive=*/true).ok());
  EXPECT_TRUE(fs_->Exists("/.Trash/alice/docs/sub/deep.txt"));
  EXPECT_TRUE(fs_->Exists("/.Trash/alice/docs/a.txt"));
}

TEST_F(TrashTest, DisabledByDefault) {
  ClusterSpec spec = TrashSpec();
  spec.master.enable_trash = false;
  auto cluster = Cluster::Create(spec);
  ASSERT_TRUE(cluster.ok());
  FileSystem fs(cluster->get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs.WriteFile("/x", "gone", options).ok());
  ASSERT_TRUE(fs.Delete("/x").ok());
  EXPECT_FALSE(fs.Exists("/.Trash"));
  EXPECT_EQ((*cluster)->master()->block_manager().NumBlocks(), 0);
}

}  // namespace
}  // namespace octo
