// Tests for the internal multi-level cache management policy (paper §6).

#include <gtest/gtest.h>

#include "client/file_system.h"
#include "cluster/cache_manager.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec CacheSpec() {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 3;
  MediumSpec memory{kMemoryTier, MediaType::kMemory, 8 * kMiB,
                    FromMBps(1900), FromMBps(3200)};
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {memory, hdd, hdd};
  return spec;
}

class CacheManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(CacheSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
    CreateOptions options;
    options.rep_vector = ReplicationVector::Of(0, 0, 2);  // HDD only
    options.block_size = kMiB;
    for (const char* name : {"/hot", "/warm", "/cold"}) {
      ASSERT_TRUE(
          fs_->WriteFile(name, std::string(2 * kMiB, 'd'), options).ok());
    }
    manager_ = std::make_unique<CacheManager>(cluster_->master());
  }

  int MemoryReplicas(const std::string& path) {
    auto located = fs_->GetFileBlockLocations(path, 0, 2 * kMiB);
    OCTO_CHECK(located.ok());
    int memory = 0;
    for (const PlacedReplica& r : (*located)[0].locations) {
      memory += r.tier == kMemoryTier ? 1 : 0;
    }
    return memory;
  }

  void Settle() {
    ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<CacheManager> manager_;
};

TEST_F(CacheManagerTest, HotFileGetsPromotedToMemory) {
  for (int i = 0; i < 5; ++i) manager_->RecordAccess("/hot");
  manager_->RecordAccess("/cold");
  auto report = manager_->Tick();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->promotions, 1);
  EXPECT_TRUE(manager_->IsPromoted("/hot"));
  EXPECT_FALSE(manager_->IsPromoted("/cold"));
  Settle();
  EXPECT_EQ(MemoryReplicas("/hot"), 1);
  EXPECT_EQ(MemoryReplicas("/cold"), 0);
  // The persistent replicas are untouched.
  EXPECT_EQ(fs_->GetFileStatus("/hot")->rep_vector,
            ReplicationVector::Of(1, 0, 2));
}

TEST_F(CacheManagerTest, CooledFileIsEvicted) {
  for (int i = 0; i < 5; ++i) manager_->RecordAccess("/hot");
  ASSERT_TRUE(manager_->Tick().ok());
  Settle();
  ASSERT_EQ(MemoryReplicas("/hot"), 1);

  // No further accesses; advance past several decay intervals.
  auto* sim = cluster_->simulation();
  sim->Schedule(300.0, [] {});
  sim->RunUntilIdle();
  auto report = manager_->Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 1);
  EXPECT_FALSE(manager_->IsPromoted("/hot"));
  Settle();
  EXPECT_EQ(MemoryReplicas("/hot"), 0);
  // Durable replicas survive eviction.
  EXPECT_EQ(fs_->GetFileStatus("/hot")->rep_vector,
            ReplicationVector::Of(0, 0, 2));
}

TEST_F(CacheManagerTest, BudgetBoundsPromotions) {
  // Memory: 3 nodes x 8 MiB x 0.8 budget ≈ 19.2 MiB. Write hot files
  // totalling more than that; only some fit.
  CreateOptions options;
  options.rep_vector = ReplicationVector::Of(0, 0, 2);
  options.block_size = 8 * kMiB;
  for (int i = 0; i < 5; ++i) {
    std::string path = "/big" + std::to_string(i);
    ASSERT_TRUE(
        fs_->WriteFile(path, std::string(6 * kMiB, 'b'), options).ok());
    for (int a = 0; a < 10; ++a) manager_->RecordAccess(path);
  }
  auto report = manager_->Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->promotions, 0);
  EXPECT_LT(report->promotions, 5);
  EXPECT_LE(report->bytes_promoted,
            static_cast<int64_t>(3 * 8 * kMiB * 0.8));
}

TEST_F(CacheManagerTest, UserPinnedMemoryReplicasAreNeverEvicted) {
  // The user pins /warm in memory explicitly.
  ASSERT_TRUE(
      fs_->SetReplication("/warm", ReplicationVector::Of(1, 0, 2)).ok());
  Settle();
  ASSERT_EQ(MemoryReplicas("/warm"), 1);
  // The manager never promoted it, so a cold Tick must not touch it.
  auto report = manager_->Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 0);
  Settle();
  EXPECT_EQ(MemoryReplicas("/warm"), 1);
}

TEST_F(CacheManagerTest, DeletedFileLeavesPromotedSetGracefully) {
  for (int i = 0; i < 5; ++i) manager_->RecordAccess("/hot");
  ASSERT_TRUE(manager_->Tick().ok());
  Settle();
  ASSERT_TRUE(fs_->Delete("/hot").ok());
  auto* sim = cluster_->simulation();
  sim->Schedule(300.0, [] {});
  sim->RunUntilIdle();
  auto report = manager_->Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 1);
  EXPECT_FALSE(manager_->IsPromoted("/hot"));
}

TEST_F(CacheManagerTest, HottestFilesWinTheBudget) {
  CreateOptions options;
  options.rep_vector = ReplicationVector::Of(0, 0, 2);
  options.block_size = 8 * kMiB;
  ASSERT_TRUE(fs_->WriteFile("/very-hot", std::string(8 * kMiB, 'v'),
                             options)
                  .ok());
  ASSERT_TRUE(
      fs_->WriteFile("/less-hot", std::string(8 * kMiB, 'l'), options).ok());
  CacheManagerOptions tight;
  tight.memory_budget_fraction = 8.0 * kMiB / (3 * 8 * kMiB);  // one file
  CacheManager manager(cluster_->master(), tight);
  for (int i = 0; i < 10; ++i) manager.RecordAccess("/very-hot");
  for (int i = 0; i < 5; ++i) manager.RecordAccess("/less-hot");
  auto report = manager.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(manager.IsPromoted("/very-hot"));
  EXPECT_FALSE(manager.IsPromoted("/less-hot"));
}

}  // namespace
}  // namespace octo
