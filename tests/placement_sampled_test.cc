// Tests for the sampled (sublinear) MOOP placement mode against its
// exhaustive oracle (DESIGN.md §11). The exhaustive mode IS the spec:
// sampled placements must obey every hard invariant the exhaustive mode
// guarantees (feasibility, no duplicates, rack spread, the volatile
// cap), must be placeable exactly when the exhaustive mode is placeable
// (the empty-sample fallback), must be deterministic given the Random
// seed, and — the soft criterion — must stay within a bounded MOOP-score
// regret of the exhaustive argmin across seeds and cluster shapes.
//
// A dedicated churn test interleaves decisions with decommissions,
// failures and space exhaustion to prove the candidate indexes never
// serve a stale (dead or full) medium.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "core/cluster_state.h"
#include "core/objectives.h"
#include "core/placement.h"

namespace octo {
namespace {

constexpr int64_t kBlock = 4 * kMiB;

/// `racks` racks × `nodes_per_rack` workers, each with one memory, one
/// SSD and two HDD media (the paper's node profile).
ClusterState MakeCluster(int racks, int nodes_per_rack,
                         int64_t hdd_cap = 1024 * kMiB) {
  ClusterState state;
  state.AddTier({kMemoryTier, "Memory", MediaType::kMemory});
  state.AddTier({kSsdTier, "SSD", MediaType::kSsd});
  state.AddTier({kHddTier, "HDD", MediaType::kHdd});
  WorkerId next_worker = 0;
  MediumId next_medium = 0;
  for (int r = 0; r < racks; ++r) {
    for (int n = 0; n < nodes_per_rack; ++n) {
      WorkerInfo w;
      w.id = next_worker++;
      w.location =
          NetworkLocation("r" + std::to_string(r), "n" + std::to_string(n));
      w.net_bps = 1.25e9;
      EXPECT_TRUE(state.AddWorker(w).ok());
      auto add = [&](TierId tier, MediaType type, int64_t cap, double wb,
                     double rb) {
        MediumInfo m;
        m.id = next_medium++;
        m.worker = w.id;
        m.location = w.location;
        m.tier = tier;
        m.type = type;
        m.capacity_bytes = cap;
        m.remaining_bytes = cap;
        m.write_bps = wb;
        m.read_bps = rb;
        EXPECT_TRUE(state.AddMedium(m).ok());
      };
      add(kMemoryTier, MediaType::kMemory, 64 * kMiB, FromMBps(1900),
          FromMBps(3200));
      add(kSsdTier, MediaType::kSsd, 256 * kMiB, FromMBps(340), FromMBps(420));
      add(kHddTier, MediaType::kHdd, hdd_cap, FromMBps(126), FromMBps(177));
      add(kHddTier, MediaType::kHdd, hdd_cap, FromMBps(126), FromMBps(177));
    }
  }
  return state;
}

std::unique_ptr<PlacementPolicy> Sampled() {
  MoopOptions options;
  options.use_memory = true;
  options.mode = PlacementMode::kSampled;
  return MakeMoopPolicy(options);
}

std::unique_ptr<PlacementPolicy> Exhaustive() {
  MoopOptions options;
  options.use_memory = true;
  return MakeMoopPolicy(options);
}

PlacementRequest Request(const ClusterState& state, WorkerId client,
                         ReplicationVector rv) {
  PlacementRequest request;
  const WorkerInfo* w = state.FindWorker(client);
  if (w != nullptr) request.client = w->location;
  request.rep_vector = rv;
  request.block_size = kBlock;
  return request;
}

/// Hard invariants shared with the exhaustive mode: live media with
/// space, no duplicate media, and (given ≥2 racks and ≥2 replicas) the
/// 2-rack spread of §3.3's pruning heuristic.
void CheckHardInvariants(const ClusterState& state,
                         const std::vector<MediumId>& placed,
                         const PlacementRequest& request,
                         bool expect_spread = true) {
  std::set<MediumId> unique(placed.begin(), placed.end());
  EXPECT_EQ(unique.size(), placed.size()) << "duplicate media";
  std::set<std::string> racks;
  for (MediumId id : placed) {
    const MediumInfo* m = state.FindMedium(id);
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(state.MediumLive(id)) << "placed on dead medium " << id;
    EXPECT_GE(m->remaining_bytes, request.block_size)
        << "placed on full medium " << id;
    racks.insert(m->location.rack());
  }
  // When some racks may have been drained of feasible media (churn), the
  // policies legitimately relax the spread rather than fail the write.
  if (expect_spread && placed.size() >= 2 && state.NumRacks() >= 2) {
    EXPECT_GE(racks.size(), 2u) << "replicas not spread across racks";
    EXPECT_LE(racks.size(), 2u) << "replicas spread beyond two racks";
  }
}

double ScoreOf(const ClusterState& state, const Objectives& objectives,
               const std::vector<MediumId>& placed) {
  std::vector<const MediumInfo*> chosen;
  chosen.reserve(placed.size());
  for (MediumId id : placed) chosen.push_back(state.FindMedium(id));
  return objectives.Score(chosen);
}

// ---------------------------------------------------------------------------
// Bounded regret vs the exhaustive oracle.

TEST(PlacementSampledTest, BoundedRegretAcrossSeeds) {
  // Per-decision scores of the sampled mode must track the exhaustive
  // argmin within a small additive regret, on every seed, while the
  // cluster fills under the sampled trajectory. The bounds are loose
  // enough to tolerate tie-breaking noise but tight enough that a
  // sampling bug (stale indexes, wrong rack choice, missing fallback)
  // blows through them.
  for (uint64_t seed : {3u, 17u, 29u, 20170614u}) {
    ClusterState state = MakeCluster(8, 8);
    auto sampled = Sampled();
    auto exhaustive = Exhaustive();
    Random rng_s(seed);
    Random rng_e(seed ^ 0x9e3779b97f4a7c15ull);

    const int kDecisions = 120;
    double total_regret = 0;
    double worst_regret = 0;
    for (int i = 0; i < kDecisions; ++i) {
      PlacementRequest request = Request(
          state, static_cast<WorkerId>(i % state.workers().size()),
          ReplicationVector::OfTotal(3));
      Objectives objectives(state, request.block_size);

      auto oracle = exhaustive->PlaceReplicas(state, request, &rng_e);
      ASSERT_TRUE(oracle.ok());
      auto placed = sampled->PlaceReplicas(state, request, &rng_s);
      ASSERT_TRUE(placed.ok());
      ASSERT_EQ(placed->size(), oracle->size());
      CheckHardInvariants(state, *placed, request);

      double regret = ScoreOf(state, objectives, *placed) -
                      ScoreOf(state, objectives, *oracle);
      total_regret += regret;
      worst_regret = std::max(worst_regret, regret);

      // Evolve the cluster along the sampled trajectory.
      for (MediumId id : *placed) {
        ASSERT_TRUE(state.AdjustMediumRemaining(id, -request.block_size).ok());
        state.AddMediumConnections(id, 1);
      }
    }
    EXPECT_LE(worst_regret, 0.35) << "seed " << seed;
    EXPECT_LE(total_regret / kDecisions, 0.05) << "seed " << seed;
  }
}

TEST(PlacementSampledTest, ExplicitTiersHonoredWithBoundedRegret) {
  for (uint64_t seed : {5u, 11u}) {
    ClusterState state = MakeCluster(6, 6);
    auto sampled = Sampled();
    auto exhaustive = Exhaustive();
    Random rng_s(seed);
    Random rng_e(seed + 1);
    for (int i = 0; i < 60; ++i) {
      PlacementRequest request =
          Request(state, static_cast<WorkerId>(i % state.workers().size()),
                  ReplicationVector::Of(1, 1, 1));
      Objectives objectives(state, request.block_size);
      auto oracle = exhaustive->PlaceReplicas(state, request, &rng_e);
      ASSERT_TRUE(oracle.ok());
      auto placed = sampled->PlaceReplicas(state, request, &rng_s);
      ASSERT_TRUE(placed.ok());
      ASSERT_EQ(placed->size(), 3u);
      CheckHardInvariants(state, *placed, request);
      std::multiset<TierId> tiers;
      for (MediumId id : *placed) {
        tiers.insert(state.FindMedium(id)->tier);
      }
      EXPECT_EQ(tiers,
                (std::multiset<TierId>{kMemoryTier, kSsdTier, kHddTier}));
      EXPECT_LE(ScoreOf(state, objectives, *placed),
                ScoreOf(state, objectives, *oracle) + 0.35);
      for (MediumId id : *placed) {
        ASSERT_TRUE(state.AdjustMediumRemaining(id, -request.block_size).ok());
        state.AddMediumConnections(id, 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Candidate-index staleness under churn.

TEST(PlacementSampledTest, NeverPlacesOnDeadOrFullMediaUnderChurn) {
  // Interleaves placement decisions with worker decommissions, crashes,
  // revivals, medium failures, and space exhaustion. Every decision must
  // come from the live-candidate indexes as they are NOW — a placement
  // on a dead or full medium means a stale index entry was served.
  for (uint64_t seed : {2u, 13u, 31u}) {
    ClusterState state = MakeCluster(10, 6, /*hdd_cap=*/64 * kMiB);
    auto sampled = Sampled();
    Random rng(seed);
    Random churn(seed * 2654435761u + 1);

    std::vector<WorkerId> workers;
    for (const auto& [id, w] : state.workers()) workers.push_back(id);
    std::vector<MediumId> media;
    for (const auto& [id, m] : state.media()) media.push_back(id);

    int placements = 0;
    for (int i = 0; i < 400; ++i) {
      switch (churn.Uniform(5)) {
        case 0: {  // crash or revive a worker (not the last few alive)
          WorkerId id = workers[churn.Uniform(workers.size())];
          const WorkerInfo* w = state.FindWorker(id);
          if (w->alive && state.NumLiveWorkers() <= 6) break;
          ASSERT_TRUE(state.SetWorkerAlive(id, !w->alive).ok());
          break;
        }
        case 1: {  // fail or repair one medium
          MediumId id = media[churn.Uniform(media.size())];
          const MediumInfo* m = state.FindMedium(id);
          ASSERT_TRUE(state.SetMediumFailed(id, !m->failed).ok());
          break;
        }
        case 2: {  // fill a medium to (near) capacity
          MediumId id = media[churn.Uniform(media.size())];
          const MediumInfo* m = state.FindMedium(id);
          ASSERT_TRUE(
              state.UpdateMediumStats(id, churn.Uniform(kBlock),
                                      m->nr_connections)
                  .ok());
          break;
        }
        default: {  // placement decision against the current indexes
          WorkerId client = workers[churn.Uniform(workers.size())];
          PlacementRequest request =
              Request(state, client, ReplicationVector::OfTotal(3));
          auto placed = sampled->PlaceReplicas(state, request, &rng);
          if (!placed.ok()) break;  // cluster may be legitimately too full
          CheckHardInvariants(state, *placed, request,
                              /*expect_spread=*/false);
          ++placements;
          for (MediumId id : *placed) {
            ASSERT_TRUE(
                state.AdjustMediumRemaining(id, -request.block_size).ok());
            state.AddMediumConnections(id, 1);
          }
          break;
        }
      }
    }
    // The churn schedule must actually have exercised placement.
    EXPECT_GT(placements, 50) << "seed " << seed;
  }
}

TEST(PlacementSampledTest, DecommissionBetweenDecisionsIsObservedImmediately) {
  // Directed version of the churn test: place, decommission every worker
  // that just received a replica, place again — the dead workers must
  // never be chosen again, with no heartbeat round in between.
  ClusterState state = MakeCluster(5, 4);
  auto sampled = Sampled();
  Random rng(99);
  std::set<WorkerId> dead;
  for (int i = 0; i < 20; ++i) {
    PlacementRequest request =
        Request(state, static_cast<WorkerId>(0),
                ReplicationVector::OfTotal(3));
    auto placed = sampled->PlaceReplicas(state, request, &rng);
    ASSERT_TRUE(placed.ok());
    CheckHardInvariants(state, *placed, request);
    for (MediumId id : *placed) {
      WorkerId w = state.FindMedium(id)->worker;
      EXPECT_FALSE(dead.count(w)) << "replica on decommissioned worker " << w;
      if (state.NumLiveWorkers() > 6 && !dead.count(w)) {
        ASSERT_TRUE(state.SetWorkerAlive(w, false).ok());
        dead.insert(w);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism, fallback, and placeability equivalence.

TEST(PlacementSampledTest, DeterministicGivenSeed) {
  for (uint64_t seed : {1u, 42u}) {
    std::vector<std::vector<MediumId>> runs[2];
    for (int run = 0; run < 2; ++run) {
      ClusterState state = MakeCluster(8, 8);
      auto sampled = Sampled();
      Random rng(seed);
      for (int i = 0; i < 40; ++i) {
        PlacementRequest request = Request(
            state, static_cast<WorkerId>(i % 64),
            i % 2 == 0 ? ReplicationVector::OfTotal(3)
                       : ReplicationVector::Of(1, 0, 2));
        auto placed = sampled->PlaceReplicas(state, request, &rng);
        ASSERT_TRUE(placed.ok());
        for (MediumId id : *placed) {
          ASSERT_TRUE(
              state.AdjustMediumRemaining(id, -request.block_size).ok());
          state.AddMediumConnections(id, 1);
        }
        runs[run].push_back(std::move(*placed));
      }
    }
    EXPECT_EQ(runs[0], runs[1]) << "seed " << seed;
  }
}

TEST(PlacementSampledTest, FallsBackToExhaustiveWhenSampleMisses) {
  // One single medium in the whole cluster still has room on the SSD
  // tier. Random draws will usually miss it, but the seeded per-rack
  // best and the exhaustive fallback guarantee it is always found.
  ClusterState state = MakeCluster(6, 4);
  std::vector<MediumId> ssd;
  for (const auto& [id, m] : state.media()) {
    if (m.tier == kSsdTier) ssd.push_back(id);
  }
  // Keep space only on the last SSD (a medium the per-rack goodness
  // summaries do not favor: give it maximum connections too).
  for (size_t i = 0; i + 1 < ssd.size(); ++i) {
    ASSERT_TRUE(state.UpdateMediumStats(ssd[i], 0, 0).ok());
  }
  MediumId survivor = ssd.back();
  ASSERT_TRUE(state.UpdateMediumStats(survivor, 8 * kMiB, 50).ok());

  auto sampled = Sampled();
  Random rng(7);
  for (int i = 0; i < 10; ++i) {
    PlacementRequest request =
        Request(state, static_cast<WorkerId>(i), ReplicationVector::Of(0, 1, 0));
    auto placed = sampled->PlaceReplicas(state, request, &rng);
    ASSERT_TRUE(placed.ok());
    ASSERT_EQ(placed->size(), 1u);
    EXPECT_EQ((*placed)[0], survivor);
  }
}

TEST(PlacementSampledTest, PlaceableIffExhaustivePlaceable) {
  // When nothing fits, both modes must fail; when the exhaustive mode
  // can place, the sampled mode must too (fallback covers the gap).
  ClusterState state = MakeCluster(3, 3);
  auto sampled = Sampled();
  auto exhaustive = Exhaustive();
  Random rng(11);

  PlacementRequest request =
      Request(state, 0, ReplicationVector::OfTotal(2));
  request.block_size = 16384 * kMiB;  // larger than every medium
  auto s = sampled->PlaceReplicas(state, request, &rng);
  auto e = exhaustive->PlaceReplicas(state, request, &rng);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(e.ok());

  request.block_size = kBlock;
  s = sampled->PlaceReplicas(state, request, &rng);
  e = exhaustive->PlaceReplicas(state, request, &rng);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(s->size(), e->size());
}

TEST(PlacementSampledTest, VolatileCapHoldsInSampledMode) {
  // With memory enabled, at most ⌊r · cap⌋ of an Unspecified request's
  // replicas may land in memory — same rule as the exhaustive mode.
  ClusterState state = MakeCluster(4, 6);
  auto sampled = Sampled();
  Random rng(23);
  for (int i = 0; i < 40; ++i) {
    PlacementRequest request =
        Request(state, static_cast<WorkerId>(i % 24),
                ReplicationVector::OfTotal(3));
    auto placed = sampled->PlaceReplicas(state, request, &rng);
    ASSERT_TRUE(placed.ok());
    int volatile_count = 0;
    for (MediumId id : *placed) {
      if (state.FindMedium(id)->tier == kMemoryTier) ++volatile_count;
    }
    EXPECT_LE(volatile_count, 1) << "volatile cap exceeded";
  }
}

}  // namespace
}  // namespace octo
