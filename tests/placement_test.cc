// Tests for the placement policies: MOOP (Algorithms 1-2 with the §3.3
// pruning heuristics), the single-objective policies, the rule-based
// baseline, HDFS default placement, and over-replication selection.
// Includes parameterized property sweeps over replica counts.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/units.h"
#include "core/cluster_state.h"
#include "core/placement.h"

namespace octo {
namespace {

// Builds an r-rack cluster with `nodes_per_rack` workers, each carrying
// one memory, one SSD and two HDD media (capacities in MiB).
class PlacementTest : public ::testing::Test {
 protected:
  void Build(int racks, int nodes_per_rack) {
    state_ = ClusterState();
    state_.AddTier({kMemoryTier, "Memory", MediaType::kMemory});
    state_.AddTier({kSsdTier, "SSD", MediaType::kSsd});
    state_.AddTier({kHddTier, "HDD", MediaType::kHdd});
    WorkerId next_worker = 0;
    MediumId next_medium = 0;
    for (int r = 0; r < racks; ++r) {
      for (int n = 0; n < nodes_per_rack; ++n) {
        WorkerInfo w;
        w.id = next_worker++;
        w.location = NetworkLocation("r" + std::to_string(r),
                                     "n" + std::to_string(n));
        w.net_bps = 1.25e9;
        ASSERT_TRUE(state_.AddWorker(w).ok());
        auto add = [&](TierId tier, MediaType type, int64_t cap, double wb,
                       double rb) {
          MediumInfo m;
          m.id = next_medium++;
          m.worker = w.id;
          m.location = w.location;
          m.tier = tier;
          m.type = type;
          m.capacity_bytes = cap;
          m.remaining_bytes = cap;
          m.write_bps = wb;
          m.read_bps = rb;
          ASSERT_TRUE(state_.AddMedium(m).ok());
        };
        add(kMemoryTier, MediaType::kMemory, 64 * kMiB, FromMBps(1900),
            FromMBps(3200));
        add(kSsdTier, MediaType::kSsd, 256 * kMiB, FromMBps(340),
            FromMBps(420));
        add(kHddTier, MediaType::kHdd, 1024 * kMiB, FromMBps(126),
            FromMBps(177));
        add(kHddTier, MediaType::kHdd, 1024 * kMiB, FromMBps(126),
            FromMBps(177));
      }
    }
  }

  // Common post-conditions every policy must satisfy.
  void CheckValid(const std::vector<MediumId>& placed,
                  const PlacementRequest& request) {
    std::set<MediumId> unique(placed.begin(), placed.end());
    EXPECT_EQ(unique.size(), placed.size()) << "duplicate media";
    for (MediumId id : placed) {
      const MediumInfo* m = state_.FindMedium(id);
      ASSERT_NE(m, nullptr);
      EXPECT_GE(m->remaining_bytes - request.block_size, 0)
          << "placed on a full medium";
      EXPECT_TRUE(state_.MediumLive(id));
      // No overlap with pre-existing replicas.
      for (MediumId existing : request.existing) {
        EXPECT_NE(id, existing);
      }
    }
  }

  TierId TierOf(MediumId id) { return state_.FindMedium(id)->tier; }
  std::string RackOf(MediumId id) {
    return state_.FindMedium(id)->location.rack();
  }
  WorkerId NodeOf(MediumId id) { return state_.FindMedium(id)->worker; }

  ClusterState state_;
  Random rng_{42};
};

// ---------------------------------------------------------------------------
// MOOP policy

TEST_F(PlacementTest, MoopHonorsExplicitTiers) {
  Build(2, 3);
  auto policy = MakeMoopPolicy();
  PlacementRequest request;
  request.rep_vector = ReplicationVector::Of(1, 1, 1);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed->size(), 3u);
  std::multiset<TierId> tiers;
  for (MediumId id : *placed) tiers.insert(TierOf(id));
  EXPECT_EQ(tiers, (std::multiset<TierId>{kMemoryTier, kSsdTier, kHddTier}));
  CheckValid(*placed, request);
}

TEST_F(PlacementTest, MoopSkipsMemoryForUnspecifiedByDefault) {
  Build(2, 3);
  auto policy = MakeMoopPolicy();  // use_memory = false
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  for (int i = 0; i < 20; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    for (MediumId id : *placed) {
      EXPECT_NE(TierOf(id), kMemoryTier) << "volatile tier used for U";
    }
  }
}

TEST_F(PlacementTest, MoopMemoryCapLimitsVolatileReplicas) {
  Build(2, 3);
  MoopOptions options;
  options.use_memory = true;
  auto policy = MakeMoopPolicy(options);
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  for (int i = 0; i < 20; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    int memory = 0;
    for (MediumId id : *placed) memory += TierOf(id) == kMemoryTier ? 1 : 0;
    EXPECT_LE(memory, 1);  // floor(3 * 1/3) = 1
  }
}

TEST_F(PlacementTest, MoopExplicitMemoryRequestBypassesCap) {
  Build(2, 3);
  auto policy = MakeMoopPolicy();  // memory disabled for U...
  PlacementRequest request;
  request.rep_vector = ReplicationVector::Of(2, 0, 1);  // ...but pinned here
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  int memory = 0;
  for (MediumId id : *placed) memory += TierOf(id) == kMemoryTier ? 1 : 0;
  EXPECT_EQ(memory, 2);
}

TEST_F(PlacementTest, MoopSpreadsAcrossExactlyTwoRacks) {
  Build(3, 3);
  auto policy = MakeMoopPolicy();
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  for (int i = 0; i < 20; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    ASSERT_EQ(placed->size(), 3u);
    std::set<std::string> racks;
    std::set<WorkerId> nodes;
    for (MediumId id : *placed) {
      racks.insert(RackOf(id));
      nodes.insert(NodeOf(id));
    }
    EXPECT_EQ(racks.size(), 2u) << "replicas should span exactly 2 racks";
    EXPECT_EQ(nodes.size(), 3u) << "replicas should span distinct nodes";
  }
}

TEST_F(PlacementTest, MoopPrefersClientLocalFirstReplica) {
  Build(2, 3);
  auto policy = MakeMoopPolicy();
  PlacementRequest request;
  request.client = NetworkLocation("r1", "n2");
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  const WorkerInfo* local = state_.WorkerAt(request.client);
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(NodeOf((*placed)[0]), local->id);
}

TEST_F(PlacementTest, MoopSkipsFullMedia) {
  Build(1, 2);
  // Fill every SSD completely.
  for (const auto& [id, m] : state_.media()) {
    if (m.tier == kSsdTier) {
      ASSERT_TRUE(state_.UpdateMediumStats(id, 0, 0).ok());
    }
  }
  auto policy = MakeMoopPolicy();
  PlacementRequest request;
  request.rep_vector = ReplicationVector::Of(0, 1, 1);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  // The SSD entry cannot be satisfied; the HDD one can.
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed->size(), 1u);
  EXPECT_EQ(TierOf((*placed)[0]), kHddTier);
}

TEST_F(PlacementTest, MoopNoSpaceAnywhereFails) {
  Build(1, 1);
  for (const auto& [id, m] : state_.media()) {
    ASSERT_TRUE(state_.UpdateMediumStats(id, 0, 0).ok());
  }
  auto policy = MakeMoopPolicy();
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(2);
  request.block_size = kMiB;
  EXPECT_TRUE(policy->PlaceReplicas(state_, request, &rng_)
                  .status()
                  .IsNoSpace());
}

TEST_F(PlacementTest, MoopAccountsExistingReplicasForDiversity) {
  Build(2, 3);
  auto policy = MakeMoopPolicy();
  // Block already has replicas on two HDDs of rack r0.
  std::vector<MediumId> existing;
  for (const auto& [id, m] : state_.media()) {
    if (m.tier == kHddTier && m.location.rack() == "r0" &&
        existing.size() < 2 &&
        (existing.empty() ||
         state_.FindMedium(existing[0])->worker != m.worker)) {
      existing.push_back(id);
    }
  }
  ASSERT_EQ(existing.size(), 2u);
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(1);
  request.block_size = kMiB;
  request.existing = existing;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  ASSERT_EQ(placed->size(), 1u);
  // The new replica must land on the *other* rack (2-rack spread).
  EXPECT_EQ(RackOf((*placed)[0]), "r1");
  CheckValid(*placed, request);
}

// ---------------------------------------------------------------------------
// Single-objective policies

TEST_F(PlacementTest, DataBalancingPicksEmptiestMedia) {
  Build(1, 3);
  // Make one HDD clearly emptier (others 50% full).
  MediumId emptiest = kInvalidMedium;
  for (const auto& [id, m] : state_.media()) {
    if (m.tier != kHddTier) continue;
    if (emptiest == kInvalidMedium) {
      emptiest = id;  // leave at 100%
    } else {
      ASSERT_TRUE(
          state_.UpdateMediumStats(id, m.capacity_bytes / 2, 0).ok());
    }
  }
  MoopOptions options;
  options.rack_pruning = false;
  options.prefer_client_local = false;
  auto policy = MakeSingleObjectivePolicy(Objective::kDataBalancing, options);
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(1);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ((*placed)[0], emptiest);
}

TEST_F(PlacementTest, LoadBalancingAvoidsBusyMedia) {
  Build(1, 3);
  // Every medium busy except one HDD.
  MediumId idle = kInvalidMedium;
  for (const auto& [id, m] : state_.media()) {
    if (m.tier == kHddTier && idle == kInvalidMedium) {
      idle = id;
      continue;
    }
    ASSERT_TRUE(state_.UpdateMediumStats(id, m.remaining_bytes, 5).ok());
  }
  MoopOptions options;
  options.use_memory = true;
  options.rack_pruning = false;
  options.prefer_client_local = false;
  auto policy = MakeSingleObjectivePolicy(Objective::kLoadBalancing, options);
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(1);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ((*placed)[0], idle);
}

TEST_F(PlacementTest, ThroughputMaxPrefersFastTiers) {
  Build(1, 3);
  MoopOptions options;
  options.use_memory = true;
  options.rack_pruning = false;
  options.prefer_client_local = false;
  auto policy = MakeSingleObjectivePolicy(Objective::kThroughputMax, options);
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  // The memory cap admits one volatile replica (floor(3/3)); TM fills the
  // rest with the next-fastest tier (SSD), never touching HDDs.
  int memory = 0, ssd = 0;
  for (MediumId id : *placed) {
    memory += TierOf(id) == kMemoryTier ? 1 : 0;
    ssd += TierOf(id) == kSsdTier ? 1 : 0;
  }
  EXPECT_EQ(memory, 1);
  EXPECT_EQ(ssd, 2);
}

TEST_F(PlacementTest, FaultTolerancePrefersTierAndNodeDiversity) {
  Build(2, 3);
  MoopOptions options;
  options.use_memory = true;
  auto policy =
      MakeSingleObjectivePolicy(Objective::kFaultTolerance, options);
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  auto placed = policy->PlaceReplicas(state_, request, &rng_);
  ASSERT_TRUE(placed.ok());
  std::set<TierId> tiers;
  std::set<WorkerId> nodes;
  for (MediumId id : *placed) {
    tiers.insert(TierOf(id));
    nodes.insert(NodeOf(id));
  }
  EXPECT_EQ(tiers.size(), 3u);
  EXPECT_EQ(nodes.size(), 3u);
}

// ---------------------------------------------------------------------------
// Rule-based & HDFS baselines

TEST_F(PlacementTest, RuleBasedRotatesTiers) {
  Build(2, 3);
  auto policy = MakeRuleBasedPolicy();
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  std::set<TierId> tiers_seen;
  for (int i = 0; i < 6; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    CheckValid(*placed, request);
    for (MediumId id : *placed) tiers_seen.insert(TierOf(id));
  }
  // Round-robin across tiers must touch all three.
  EXPECT_EQ(tiers_seen.size(), 3u);
}

TEST_F(PlacementTest, HdfsOnlyUsesAllowedTypes) {
  Build(2, 3);
  auto policy = MakeHdfsPolicy({MediaType::kHdd});
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  for (int i = 0; i < 10; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    CheckValid(*placed, request);
    for (MediumId id : *placed) EXPECT_EQ(TierOf(id), kHddTier);
  }
}

TEST_F(PlacementTest, HdfsWithSsdUsesBothTypes) {
  Build(2, 3);
  auto policy = MakeHdfsPolicy({MediaType::kHdd, MediaType::kSsd});
  PlacementRequest request;
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  std::set<TierId> seen;
  for (int i = 0; i < 30; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    for (MediumId id : *placed) {
      seen.insert(TierOf(id));
      EXPECT_NE(TierOf(id), kMemoryTier);
    }
  }
  EXPECT_TRUE(seen.count(kSsdTier) > 0);
  EXPECT_TRUE(seen.count(kHddTier) > 0);
}

TEST_F(PlacementTest, HdfsClassicRackPattern) {
  Build(2, 4);
  auto policy = MakeHdfsPolicy({MediaType::kHdd});
  PlacementRequest request;
  request.client = NetworkLocation("r0", "n1");
  request.rep_vector = ReplicationVector::OfTotal(3);
  request.block_size = kMiB;
  for (int i = 0; i < 10; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok());
    ASSERT_EQ(placed->size(), 3u);
    // First replica on the writer's node.
    EXPECT_EQ(NodeOf((*placed)[0]), state_.WorkerAt(request.client)->id);
    // Second on the other rack; third on the second replica's rack.
    EXPECT_NE(RackOf((*placed)[1]), "r0");
    EXPECT_EQ(RackOf((*placed)[2]), RackOf((*placed)[1]));
    EXPECT_NE(NodeOf((*placed)[2]), NodeOf((*placed)[1]));
  }
}

// ---------------------------------------------------------------------------
// Over-replication selection (paper §5)

TEST_F(PlacementTest, SelectReplicaToRemovePicksFromRequestedTier) {
  Build(2, 3);
  std::vector<MediumId> replicas;
  for (const auto& [id, m] : state_.media()) {
    if (m.tier == kHddTier && replicas.size() < 3) replicas.push_back(id);
    if (m.tier == kSsdTier && replicas.size() == 3) {
      replicas.push_back(id);
      break;
    }
  }
  auto victim = SelectReplicaToRemove(state_, replicas, kHddTier, kMiB);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(TierOf(*victim), kHddTier);
  auto missing = SelectReplicaToRemove(state_, replicas, kMemoryTier, kMiB);
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(PlacementTest, SelectReplicaToRemoveKeepsDiversity) {
  Build(2, 3);
  // Replicas: two HDDs on the SAME node plus one HDD on another node.
  std::vector<MediumId> same_node;
  MediumId other_node = kInvalidMedium;
  for (const auto& [id, m] : state_.media()) {
    if (m.tier != kHddTier) continue;
    if (m.worker == 0 && same_node.size() < 2) {
      same_node.push_back(id);
    } else if (m.worker == 3 && other_node == kInvalidMedium) {
      other_node = id;
    }
  }
  std::vector<MediumId> replicas = same_node;
  replicas.push_back(other_node);
  auto victim = SelectReplicaToRemove(state_, replicas, kHddTier, kMiB);
  ASSERT_TRUE(victim.ok());
  // Removing one of the colocated pair preserves node diversity; removing
  // the lone replica would not.
  EXPECT_NE(*victim, other_node);
}

// ---------------------------------------------------------------------------
// Property sweep: every policy produces valid placements for all r.

struct SweepParam {
  int policy;  // 0=moop, 1=db, 2=lb, 3=ft, 4=tm, 5=rule, 6=hdfs
  int replicas;
};

class PlacementSweep
    : public PlacementTest,
      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(PlacementSweep, AlwaysValid) {
  Build(3, 3);
  auto [which, r] = GetParam();
  std::unique_ptr<PlacementPolicy> policy;
  MoopOptions options;
  options.use_memory = true;
  switch (which) {
    case 0: policy = MakeMoopPolicy(options); break;
    case 1:
      policy = MakeSingleObjectivePolicy(Objective::kDataBalancing, options);
      break;
    case 2:
      policy = MakeSingleObjectivePolicy(Objective::kLoadBalancing, options);
      break;
    case 3:
      policy = MakeSingleObjectivePolicy(Objective::kFaultTolerance, options);
      break;
    case 4:
      policy = MakeSingleObjectivePolicy(Objective::kThroughputMax, options);
      break;
    case 5: policy = MakeRuleBasedPolicy(); break;
    default: policy = MakeHdfsPolicy({MediaType::kHdd}); break;
  }
  PlacementRequest request;
  request.client = NetworkLocation("r0", "n0");
  request.rep_vector = ReplicationVector::OfTotal(static_cast<uint8_t>(r));
  request.block_size = kMiB;
  for (int i = 0; i < 10; ++i) {
    auto placed = policy->PlaceReplicas(state_, request, &rng_);
    ASSERT_TRUE(placed.ok()) << placed.status().ToString();
    EXPECT_EQ(placed->size(), static_cast<size_t>(r));
    CheckValid(*placed, request);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndReplicaCounts, PlacementSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 2, 3, 5)));

}  // namespace
}  // namespace octo
