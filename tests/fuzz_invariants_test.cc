// Randomized integration fuzz: a few hundred random operations (writes,
// replication changes, deletes, renames, worker crashes/restarts,
// corruption, monitor rounds) against a live cluster, with global
// invariants checked after every step:
//   * no block lists the same medium twice, or a medium of a dead record
//   * every registered replica's worker actually stores the block
//   * master remaining-space accounting never goes negative
//   * every complete file remains readable with correct contents
//   * after quiescence, every block satisfies its replication vector
//     (to the extent live media allow)

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec FuzzSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 3;
  MediumSpec memory{kMemoryTier, MediaType::kMemory, 16 * kMiB,
                    FromMBps(1900), FromMBps(3200)};
  MediumSpec ssd{kSsdTier, MediaType::kSsd, 64 * kMiB, FromMBps(340),
                 FromMBps(420)};
  MediumSpec hdd{kHddTier, MediaType::kHdd, 128 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {memory, ssd, hdd, hdd};
  return spec;
}

class FuzzInvariantsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(FuzzSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
  }

  void CheckInvariants() {
    Master* master = cluster_->master();
    const ClusterState& state = master->cluster_state();
    // Block map invariants.
    master->block_manager().ForEach([&](const BlockRecord& record) {
      std::set<MediumId> unique(record.locations.begin(),
                                record.locations.end());
      EXPECT_EQ(unique.size(), record.locations.size())
          << "block " << record.id << " lists a medium twice";
      for (MediumId m : record.locations) {
        const MediumInfo* info = state.FindMedium(m);
        ASSERT_NE(info, nullptr);
        Worker* worker = cluster_->worker(info->worker);
        ASSERT_NE(worker, nullptr);
        if (!cluster_->IsStopped(info->worker)) {
          EXPECT_TRUE(worker->HasBlock(m, record.id))
              << "registered replica of block " << record.id
              << " missing from medium " << m;
        }
      }
    });
    // Space accounting.
    for (const auto& [id, m] : state.media()) {
      EXPECT_GE(m.remaining_bytes, 0) << "medium " << id;
      EXPECT_LE(m.remaining_bytes, m.capacity_bytes) << "medium " << id;
    }
    // Every complete file readable with intact contents (as long as at
    // least one replica is on a live worker).
    for (const auto& [path, expected] : contents_) {
      auto data = fs_->ReadFile(path);
      if (data.ok()) {
        EXPECT_EQ(*data, expected) << path << " content changed";
      } else {
        // Only acceptable when every replica is on stopped workers.
        EXPECT_TRUE(AnyReplicaReachable(path) == false)
            << path << ": " << data.status().ToString();
      }
    }
  }

  bool AnyReplicaReachable(const std::string& path) {
    auto located = cluster_->master()->GetBlockLocations(
        path, NetworkLocation());
    if (!located.ok()) return false;
    for (const LocatedBlock& block : *located) {
      bool reachable = false;
      for (const PlacedReplica& replica : block.locations) {
        if (!cluster_->IsStopped(replica.worker)) reachable = true;
      }
      if (!reachable) return false;
    }
    return true;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
  std::map<std::string, std::string> contents_;
  std::set<BlockId> corrupted_;
};

TEST_P(FuzzInvariantsTest, RandomOperationsPreserveInvariants) {
  Random rng(GetParam());
  int name = 0;
  std::vector<WorkerId> stopped;

  auto random_rv = [&rng]() {
    // A valid mix: sometimes tier-pinned, sometimes U, total 1..4.
    if (rng.Bernoulli(0.5)) {
      return ReplicationVector::OfTotal(
          static_cast<uint8_t>(1 + rng.Uniform(3)));
    }
    ReplicationVector rv;
    rv.Set(kMemoryTier, rng.Bernoulli(0.3) ? 1 : 0);
    rv.Set(kSsdTier, static_cast<uint8_t>(rng.Uniform(2)));
    rv.Set(kHddTier, static_cast<uint8_t>(rng.Uniform(3)));
    if (rv.total() == 0) rv.Set(kHddTier, 1);
    return rv;
  };

  for (int step = 0; step < 120; ++step) {
    int op = static_cast<int>(rng.Uniform(10));
    if (op <= 2 || contents_.empty()) {  // write a new file
      std::string path = "/fuzz/f" + std::to_string(name++);
      std::string data(1024 + rng.Uniform(256 * 1024), 'a');
      for (char& c : data) c = static_cast<char>('a' + rng.Uniform(26));
      CreateOptions options;
      options.rep_vector = random_rv();
      options.block_size = 64 * kKiB << rng.Uniform(4);
      Status st = fs_->WriteFile(path, data, options);
      if (st.ok()) contents_[path] = data;
    } else if (op == 3) {  // change replication vector
      auto it = contents_.begin();
      std::advance(it, rng.Uniform(contents_.size()));
      (void)fs_->SetReplication(it->first, random_rv());
    } else if (op == 4) {  // delete
      auto it = contents_.begin();
      std::advance(it, rng.Uniform(contents_.size()));
      if (fs_->Delete(it->first).ok()) contents_.erase(it);
    } else if (op == 5) {  // rename
      auto it = contents_.begin();
      std::advance(it, rng.Uniform(contents_.size()));
      std::string to = "/fuzz/r" + std::to_string(name++);
      if (fs_->Rename(it->first, to).ok()) {
        contents_[to] = it->second;
        contents_.erase(it);
      }
    } else if (op == 6) {  // crash a worker (at most 2 down at once)
      if (stopped.size() < 2) {
        WorkerId victim = cluster_->worker_ids()[rng.Uniform(
            cluster_->worker_ids().size())];
        if (!cluster_->IsStopped(victim)) {
          cluster_->StopWorker(victim);
          stopped.push_back(victim);
        }
      }
    } else if (op == 7) {  // restart a worker
      if (!stopped.empty()) {
        cluster_->RestartWorker(stopped.back());
        stopped.pop_back();
      }
    } else if (op == 8) {  // corrupt a random stored replica
      // Restraint: only blocks with >=2 registered replicas, and at most
      // one corruption per block over the whole run — corrupting every
      // replica of a block is unrecoverable data loss by design (the
      // paper's fault model, like HDFS's, assumes independent failures
      // repaired between occurrences).
      WorkerId w = cluster_->worker_ids()[rng.Uniform(
          cluster_->worker_ids().size())];
      Worker* worker = cluster_->worker(w);
      for (auto& [medium, blocks] : worker->BuildBlockReport()) {
        if (blocks.empty() || !rng.Bernoulli(0.3)) continue;
        BlockId candidate = blocks[rng.Uniform(blocks.size())].block;
        const BlockRecord* record =
            cluster_->master()->block_manager().Find(candidate);
        if (record != nullptr && record->locations.size() >= 2 &&
            corrupted_.insert(candidate).second) {
          (void)worker->CorruptBlock(medium, candidate);
          // Prompt detection: the block scrubber notices the corruption
          // before any later replication decision can favor the bad copy.
          ASSERT_TRUE(cluster_->RunScrubber().ok());
        }
        break;
      }
    } else {  // control-plane round
      cluster_->master()->RunReplicationMonitor();
      ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
    }

    if (step % 10 == 9) CheckInvariants();
  }

  // Bring everything back, settle, and verify replication targets.
  for (WorkerId id : stopped) cluster_->RestartWorker(id);
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster_->SendBlockReports().ok());
  ASSERT_TRUE(cluster_->RunScrubber().ok());
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence(40).ok());
  CheckInvariants();

  const ClusterState& state = cluster_->master()->cluster_state();
  cluster_->master()->block_manager().ForEach([&](const BlockRecord& rec) {
    // A tier deficit is excusable only when that tier genuinely has no
    // space left for this block (e.g. the small memory tier filled up).
    auto tier_has_room = [&](TierId tier) {
      for (const auto& [id, m] : state.media()) {
        if (m.tier == tier && state.MediumLive(id) &&
            m.remaining_bytes >= rec.length) {
          return true;
        }
      }
      return false;
    };
    std::array<int, 8> actual{};
    for (MediumId m : rec.locations) {
      const MediumInfo* info = state.FindMedium(m);
      if (info != nullptr) actual[info->tier & 7]++;
    }
    bool infeasible = false;
    for (TierId t = 0; t < kMaxTiers; ++t) {
      if (actual[t] < rec.expected.Get(t) && !tier_has_room(t)) {
        infeasible = true;
      }
    }
    if (infeasible) {
      // Never below one replica, though: data must survive.
      EXPECT_GE(rec.locations.size(), 1u) << "block " << rec.id << " lost";
      return;
    }
    std::string tier_detail;
    for (MediumId m : rec.locations) {
      const MediumInfo* info = state.FindMedium(m);
      tier_detail += " m" + std::to_string(m) + "@t" +
                     std::to_string(info ? info->tier : -1);
    }
    EXPECT_GE(static_cast<int>(rec.locations.size()),
              std::min(rec.expected.total(), 3))
        << "block " << rec.id << " under-replicated after quiescence: "
        << rec.locations.size() << " < " << rec.expected.total()
        << " expected=" << rec.expected.ToString() << " locs:" << tier_detail
        << " queued=" << cluster_->master()->NumQueuedCommands();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzInvariantsTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

}  // namespace
}  // namespace octo
