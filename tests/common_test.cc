// Unit tests for the common runtime: Status/Result, string utilities,
// configuration, units, random, and clocks.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/config.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/units.h"

namespace octo {
namespace {

// ---------------------------------------------------------------------------
// Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::QuotaExceeded("x").IsQuotaExceeded());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing file").message(), "missing file");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("f").ToString(), "NotFound: f");
  EXPECT_EQ(Status::QuotaExceeded("q").ToString(), "QuotaExceeded: q");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IoError("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status {
    OCTO_RETURN_IF_ERROR(Status::IoError("disk"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIoError());
  auto passes = []() -> Status {
    OCTO_RETURN_IF_ERROR(Status::OK());
    return Status::NotFound("end");
  };
  EXPECT_TRUE(passes().IsNotFound());
}

// ---------------------------------------------------------------------------
// Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'a');
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Unavailable("down");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    OCTO_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 14);
  EXPECT_TRUE(outer(true).status().IsUnavailable());
}

// ---------------------------------------------------------------------------
// Strings

TEST(StringsTest, SplitSkipEmptyDropsEmptyPieces) {
  EXPECT_EQ(SplitSkipEmpty("/a//b/", '/'),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitSkipEmpty("", '/'), (std::vector<std::string>{}));
  EXPECT_EQ(SplitSkipEmpty("abc", '/'), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/a/b", "/a"));
  EXPECT_FALSE(StartsWith("/a", "/a/b"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
}

// ---------------------------------------------------------------------------
// Config

TEST(ConfigTest, TypedAccessors) {
  Config config;
  config.SetInt("a", 42);
  config.SetDouble("b", 2.5);
  config.SetBool("c", true);
  config.Set("d", "hello");
  EXPECT_EQ(config.GetInt("a", 0), 42);
  EXPECT_DOUBLE_EQ(config.GetDouble("b", 0), 2.5);
  EXPECT_TRUE(config.GetBool("c", false));
  EXPECT_EQ(config.GetString("d"), "hello");
}

TEST(ConfigTest, DefaultsWhenAbsentOrUnparseable) {
  Config config;
  config.Set("notnum", "abc");
  EXPECT_EQ(config.GetInt("missing", 9), 9);
  EXPECT_EQ(config.GetInt("notnum", 9), 9);
  EXPECT_DOUBLE_EQ(config.GetDouble("notnum", 1.5), 1.5);
  EXPECT_TRUE(config.GetBool("notnum", true));
}

TEST(ConfigTest, BoolSpellings) {
  Config config;
  config.Set("t1", "true");
  config.Set("t2", "1");
  config.Set("t3", "yes");
  config.Set("f1", "false");
  config.Set("f2", "0");
  config.Set("f3", "no");
  EXPECT_TRUE(config.GetBool("t1", false));
  EXPECT_TRUE(config.GetBool("t2", false));
  EXPECT_TRUE(config.GetBool("t3", false));
  EXPECT_FALSE(config.GetBool("f1", true));
  EXPECT_FALSE(config.GetBool("f2", true));
  EXPECT_FALSE(config.GetBool("f3", true));
}

TEST(ConfigTest, ParseLines) {
  Config config;
  ASSERT_TRUE(config
                  .ParseLines("# comment\n"
                              "octopus.block.size = 1048576\n"
                              "\n"
                              "octopus.name= cluster-a \n")
                  .ok());
  EXPECT_EQ(config.GetInt("octopus.block.size", 0), 1048576);
  EXPECT_EQ(config.GetString("octopus.name"), "cluster-a");
}

TEST(ConfigTest, ParseLinesRejectsMalformed) {
  Config config;
  EXPECT_TRUE(config.ParseLines("key-without-equals").IsInvalidArgument());
  EXPECT_TRUE(config.ParseLines("= value-without-key").IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Units

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(kKiB), "1.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB / 2), "1.50 MiB");
  EXPECT_EQ(FormatBytes(kGiB), "1.00 GiB");
  EXPECT_EQ(FormatBytes(2 * kTiB), "2.00 TiB");
}

TEST(UnitsTest, ThroughputConversions) {
  EXPECT_DOUBLE_EQ(ToMBps(1e6), 1.0);
  EXPECT_DOUBLE_EQ(FromMBps(126.3), 126.3e6);
  EXPECT_EQ(FormatThroughputMBps(126.3e6), "126.3 MB/s");
}

// ---------------------------------------------------------------------------
// Random

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
  }
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, ShufflePermutes) {
  Random rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

// ---------------------------------------------------------------------------
// Clocks

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SetMicros(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(ClockTest, SystemClockMonotonic) {
  SystemClock* clock = SystemClock::Default();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace octo
