// End-to-end tests of the full client path: cluster bring-up, file
// write/read through the pipeline, replication-vector changes, failure
// injection, and master failover.

#include <gtest/gtest.h>

#include <string>

#include "client/file_system.h"
#include "cluster/backup_master.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "common/units.h"

namespace octo {
namespace {

// A small cluster with tiny blocks so tests move real bytes quickly.
ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 3;
  spec.net_bps = 1.25e9;
  MediumSpec memory{kMemoryTier, MediaType::kMemory, 8 * kMiB,
                    FromMBps(1897.4), FromMBps(3224.8)};
  MediumSpec ssd{kSsdTier, MediaType::kSsd, 64 * kMiB, FromMBps(340.6),
                 FromMBps(419.5)};
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126.3),
                 FromMBps(177.1)};
  spec.media_per_worker = {memory, ssd, hdd, hdd};
  return spec;
}

std::string MakeData(size_t n, uint64_t seed) {
  Random rng(seed);
  std::string data(n, '\0');
  for (char& c : data) c = static_cast<char>('a' + rng.Uniform(26));
  return data;
}

class ClientIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(SmallSpec());
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(
        cluster_.get(), NetworkLocation("rack0", "node0"));
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(ClientIntegrationTest, WriteReadRoundTripSingleBlock) {
  std::string data = MakeData(100 * 1024, 1);
  CreateOptions options;
  options.block_size = 1 * kMiB;
  ASSERT_TRUE(fs_->WriteFile("/dir/file.txt", data, options).ok());
  auto read = fs_->ReadFile("/dir/file.txt");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);
}

TEST_F(ClientIntegrationTest, WriteReadRoundTripMultiBlock) {
  std::string data = MakeData(5 * kMiB + 123, 2);
  CreateOptions options;
  options.block_size = 1 * kMiB;
  ASSERT_TRUE(fs_->WriteFile("/big", data, options).ok());

  auto status = fs_->GetFileStatus("/big");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->length, static_cast<int64_t>(data.size()));
  EXPECT_FALSE(status->under_construction);

  auto locations = fs_->GetFileBlockLocations("/big", 0, data.size());
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations->size(), 6u);  // 5 full blocks + 1 partial
  for (const LocatedBlock& block : *locations) {
    EXPECT_EQ(block.locations.size(), 3u);  // default replication
  }

  auto read = fs_->ReadFile("/big");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(ClientIntegrationTest, PreadAtArbitraryOffsets) {
  std::string data = MakeData(3 * kMiB, 3);
  CreateOptions options;
  options.block_size = 1 * kMiB;
  ASSERT_TRUE(fs_->WriteFile("/pread", data, options).ok());
  auto reader = fs_->Open("/pread");
  ASSERT_TRUE(reader.ok());
  // Cross-block read.
  auto chunk = (*reader)->Pread(1 * kMiB - 100, 200);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(*chunk, data.substr(kMiB - 100, 200));
  // Tail read past EOF clips.
  auto tail = (*reader)->Pread(3 * kMiB - 10, 100);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, data.substr(3 * kMiB - 10));
}

TEST_F(ClientIntegrationTest, ExplicitTierPlacementIsHonored) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  options.rep_vector = ReplicationVector::Of(1, 1, 1);  // one per tier
  std::string data = MakeData(512 * 1024, 4);
  ASSERT_TRUE(fs_->WriteFile("/tiered", data, options).ok());
  auto locations = fs_->GetFileBlockLocations("/tiered", 0, data.size());
  ASSERT_TRUE(locations.ok());
  ASSERT_EQ(locations->size(), 1u);
  std::set<TierId> tiers;
  for (const PlacedReplica& replica : (*locations)[0].locations) {
    tiers.insert(replica.tier);
  }
  EXPECT_EQ(tiers, (std::set<TierId>{kMemoryTier, kSsdTier, kHddTier}));
}

TEST_F(ClientIntegrationTest, SetReplicationCopiesToNewTier) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  options.rep_vector = ReplicationVector::Of(0, 0, 2);  // 2 HDD replicas
  std::string data = MakeData(256 * 1024, 5);
  ASSERT_TRUE(fs_->WriteFile("/promote", data, options).ok());

  // Copy one replica into memory: <0,0,2> -> <1,0,2>.
  ASSERT_TRUE(
      fs_->SetReplication("/promote", ReplicationVector::Of(1, 0, 2)).ok());
  auto rounds = cluster_->RunReplicationToQuiescence();
  ASSERT_TRUE(rounds.ok()) << rounds.status().ToString();

  auto locations = fs_->GetFileBlockLocations("/promote", 0, data.size());
  ASSERT_TRUE(locations.ok());
  ASSERT_EQ(locations->size(), 1u);
  int memory = 0, hdd = 0;
  for (const PlacedReplica& replica : (*locations)[0].locations) {
    if (replica.tier == kMemoryTier) ++memory;
    if (replica.tier == kHddTier) ++hdd;
  }
  EXPECT_EQ(memory, 1);
  EXPECT_EQ(hdd, 2);
  auto read = fs_->ReadFile("/promote");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(ClientIntegrationTest, SetReplicationMovesBetweenTiers) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  options.rep_vector = ReplicationVector::Of(1, 0, 2);
  std::string data = MakeData(256 * 1024, 6);
  ASSERT_TRUE(fs_->WriteFile("/move", data, options).ok());

  // Move the memory replica to SSD: <1,0,2> -> <0,1,2>.
  ASSERT_TRUE(
      fs_->SetReplication("/move", ReplicationVector::Of(0, 1, 2)).ok());
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());

  auto locations = fs_->GetFileBlockLocations("/move", 0, data.size());
  ASSERT_TRUE(locations.ok());
  std::multiset<TierId> tiers;
  for (const PlacedReplica& replica : (*locations)[0].locations) {
    tiers.insert(replica.tier);
  }
  EXPECT_EQ(tiers, (std::multiset<TierId>{kSsdTier, kHddTier, kHddTier}));
}

TEST_F(ClientIntegrationTest, CorruptReplicaFailsOverAndRepairs) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  options.rep_vector = ReplicationVector::OfTotal(3);
  std::string data = MakeData(700 * 1024, 7);
  ASSERT_TRUE(fs_->WriteFile("/corrupt", data, options).ok());

  auto locations = fs_->GetFileBlockLocations("/corrupt", 0, data.size());
  ASSERT_TRUE(locations.ok());
  const LocatedBlock& block = (*locations)[0];
  ASSERT_EQ(block.locations.size(), 3u);
  // Corrupt the replica the retrieval policy would serve first.
  const PlacedReplica& first = block.locations[0];
  Worker* worker = cluster_->worker(first.worker);
  ASSERT_TRUE(worker->CorruptBlock(first.medium, block.block.id).ok());

  // The read must still succeed via failover.
  auto read = fs_->ReadFile("/corrupt");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, data);

  // The bad replica was reported; the monitor restores 3 replicas.
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  const BlockRecord* record =
      cluster_->master()->block_manager().Find(block.block.id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
}

TEST_F(ClientIntegrationTest, WorkerDeathTriggersReReplication) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  std::string data = MakeData(400 * 1024, 8);
  ASSERT_TRUE(fs_->WriteFile("/failover", data, options).ok());

  auto locations = fs_->GetFileBlockLocations("/failover", 0, data.size());
  ASSERT_TRUE(locations.ok());
  WorkerId victim = (*locations)[0].locations[0].worker;

  // Kill the worker (no more heartbeats): the master declares it dead and
  // re-replicates elsewhere.
  cluster_->StopWorker(victim);
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());

  const BlockRecord* record = cluster_->master()->block_manager().Find(
      (*locations)[0].block.id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
  for (MediumId medium : record->locations) {
    const MediumInfo* info =
        cluster_->master()->cluster_state().FindMedium(medium);
    ASSERT_NE(info, nullptr);
    EXPECT_NE(info->worker, victim);
  }
  // Data still readable (reader skips the dead worker's replica).
  auto read = fs_->ReadFile("/failover");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(ClientIntegrationTest, BackupMasterFailover) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  std::string data = MakeData(300 * 1024, 9);

  BackupMaster backup(cluster_->master(), cluster_->master()->clock());
  ASSERT_TRUE(fs_->WriteFile("/a/one", data, options).ok());
  auto checkpoint = backup.CreateCheckpoint();
  ASSERT_TRUE(checkpoint.ok());
  ASSERT_TRUE(fs_->WriteFile("/a/two", data, options).ok());
  ASSERT_TRUE(fs_->Rename("/a/two", "/a/three").ok());

  // Fail over: the replacement master has both files (checkpoint + edits).
  auto replacement = backup.TakeOver(MasterOptions{},
                                     cluster_->master()->clock());
  ASSERT_TRUE(replacement.ok()) << replacement.status().ToString();
  UserContext ctx;
  auto one = (*replacement)->GetFileStatus("/a/one", ctx);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->length, static_cast<int64_t>(data.size()));
  EXPECT_TRUE((*replacement)->GetFileStatus("/a/three", ctx).ok());
  EXPECT_FALSE((*replacement)->GetFileStatus("/a/two", ctx).ok());
  // Block records exist awaiting block reports.
  EXPECT_EQ((*replacement)->block_manager().NumBlocks(), 2);
}

TEST_F(ClientIntegrationTest, DeleteReclaimsWorkerSpace) {
  CreateOptions options;
  options.block_size = 1 * kMiB;
  std::string data = MakeData(2 * kMiB, 10);
  ASSERT_TRUE(fs_->WriteFile("/reclaim", data, options).ok());
  ASSERT_TRUE(fs_->Delete("/reclaim").ok());
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());
  // All block stores are empty again.
  for (WorkerId id : cluster_->worker_ids()) {
    for (MediumId medium : cluster_->worker(id)->MediumIds()) {
      auto report = cluster_->worker(id)->BuildBlockReport();
      EXPECT_TRUE(report[medium].empty())
          << "medium " << medium << " still has blocks";
    }
  }
}

TEST_F(ClientIntegrationTest, StorageTierReportsCoverActiveTiers) {
  auto reports = fs_->GetStorageTierReports();
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 3u);  // memory, ssd, hdd active
  for (const StorageTierReport& report : *reports) {
    EXPECT_EQ(report.num_workers, 6);
    EXPECT_GT(report.capacity_bytes, 0);
    EXPECT_GT(report.avg_write_bps, 0);
  }
}

}  // namespace
}  // namespace octo
