// Tests for the data retrieval policies (paper §4.2): the potential
// transfer rate formula (Eq. 12), tier-aware ordering, load sensitivity,
// and the HDFS locality-only baseline.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"
#include "core/cluster_state.h"
#include "core/retrieval.h"

namespace octo {
namespace {

// Cluster: w0 (/r1/n1) memory m0 + hdd m1; w1 (/r1/n2) ssd m2;
//          w2 (/r2/n1) hdd m3. NICs 1.25 GB/s.
class RetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add_worker = [&](WorkerId id, const char* rack, const char* node) {
      WorkerInfo w;
      w.id = id;
      w.location = NetworkLocation(rack, node);
      w.net_bps = 1.25e9;
      ASSERT_TRUE(state_.AddWorker(w).ok());
    };
    add_worker(0, "r1", "n1");
    add_worker(1, "r1", "n2");
    add_worker(2, "r2", "n1");
    auto add_medium = [&](MediumId id, WorkerId w, TierId tier, MediaType t,
                          double rbps) {
      MediumInfo m;
      m.id = id;
      m.worker = w;
      m.location = state_.FindWorker(w)->location;
      m.tier = tier;
      m.type = t;
      m.capacity_bytes = kGiB;
      m.remaining_bytes = kGiB;
      m.write_bps = rbps / 2;
      m.read_bps = rbps;
      ASSERT_TRUE(state_.AddMedium(m).ok());
    };
    add_medium(0, 0, kMemoryTier, MediaType::kMemory, FromMBps(3200));
    add_medium(1, 0, kHddTier, MediaType::kHdd, FromMBps(177));
    add_medium(2, 1, kSsdTier, MediaType::kSsd, FromMBps(420));
    add_medium(3, 2, kHddTier, MediaType::kHdd, FromMBps(177));
  }

  ClusterState state_;
  Random rng_{7};
};

TEST_F(RetrievalTest, LocalReadRateIsMediaBound) {
  // Client on n1 reading m1 (local HDD): no network term.
  NetworkLocation client("r1", "n1");
  EXPECT_DOUBLE_EQ(PotentialTransferRate(state_, client, 1),
                   FromMBps(177));
}

TEST_F(RetrievalTest, RemoteReadRateIsMinOfNetAndMedia) {
  NetworkLocation client("r2", "n1");
  // Remote memory: min(1.25e9, 3.2e9) = network.
  EXPECT_DOUBLE_EQ(PotentialTransferRate(state_, client, 0), 1.25e9);
  // Remote HDD: min(1.25e9, 177MB) = media.
  EXPECT_DOUBLE_EQ(PotentialTransferRate(state_, client, 1),
                   FromMBps(177));
}

TEST_F(RetrievalTest, ConnectionsDivideRates) {
  // 10 active connections on w0's NIC: remote memory drops to 125 MB/s,
  // making a local HDD read (177) the better option — the paper's §4.2
  // worked example.
  ASSERT_TRUE(state_.UpdateWorkerStats(0, 10, 0).ok());
  NetworkLocation client("r2", "n1");
  EXPECT_DOUBLE_EQ(PotentialTransferRate(state_, client, 0), 1.25e8);
  auto policy = MakeOctopusRetrievalPolicy();
  std::vector<MediumId> ordered =
      policy->OrderReplicas(state_, client, {0, 3}, &rng_);
  EXPECT_EQ(ordered[0], 3) << "local HDD should beat congested remote memory";
}

TEST_F(RetrievalTest, MediaConnectionsAlsoCount) {
  ASSERT_TRUE(state_.UpdateMediumStats(2, kGiB, 4).ok());
  NetworkLocation client("r1", "n2");
  // Local SSD with 4 readers: 420/4 = 105 MB/s.
  EXPECT_DOUBLE_EQ(PotentialTransferRate(state_, client, 2),
                   FromMBps(420) / 4);
}

TEST_F(RetrievalTest, OctopusOrdersByRate) {
  // Client off-cluster: all reads remote, NIC-capped at 1.25 GB/s except
  // the slow media. Order: memory (1250 net-capped), ssd (420), hdds.
  NetworkLocation client;
  auto policy = MakeOctopusRetrievalPolicy();
  std::vector<MediumId> ordered =
      policy->OrderReplicas(state_, client, {1, 3, 2, 0}, &rng_);
  EXPECT_EQ(ordered[0], 0);
  EXPECT_EQ(ordered[1], 2);
  // The two HDDs tie; both orders acceptable.
  EXPECT_TRUE((ordered[2] == 1 && ordered[3] == 3) ||
              (ordered[2] == 3 && ordered[3] == 1));
}

TEST_F(RetrievalTest, OctopusPrefersRemoteMemoryOverLocalHdd) {
  // The paper's motivating example: remote memory at 10 Gbps beats a
  // local 177 MB/s HDD when the network is idle.
  NetworkLocation client("r1", "n1");  // local to m1 (HDD)
  auto policy = MakeOctopusRetrievalPolicy();
  // m0 is also local here; use m2's worker... make memory remote by
  // reading from n2's perspective instead.
  NetworkLocation client2("r1", "n2");
  std::vector<MediumId> ordered =
      policy->OrderReplicas(state_, client2, {1, 0}, &rng_);
  EXPECT_EQ(ordered[0], 0) << "remote memory (1250 MB/s) > remote hdd";
  (void)client;
}

TEST_F(RetrievalTest, DeadReplicasSinkToEnd) {
  ASSERT_TRUE(state_.SetWorkerAlive(0, false).ok());
  NetworkLocation client;
  auto policy = MakeOctopusRetrievalPolicy();
  std::vector<MediumId> ordered =
      policy->OrderReplicas(state_, client, {0, 3}, &rng_);
  EXPECT_EQ(ordered[0], 3);
  EXPECT_EQ(ordered[1], 0);
}

TEST_F(RetrievalTest, HdfsOrdersByDistanceOnly) {
  auto policy = MakeHdfsRetrievalPolicy();
  NetworkLocation client("r1", "n1");
  // m1 local (distance 0), m2 same rack (2), m3 other rack (4). Tiers are
  // ignored: the local slow HDD wins over the faster remote SSD.
  std::vector<MediumId> ordered =
      policy->OrderReplicas(state_, client, {3, 2, 1}, &rng_);
  EXPECT_EQ(ordered[0], 1);
  EXPECT_EQ(ordered[1], 2);
  EXPECT_EQ(ordered[2], 3);
}

TEST_F(RetrievalTest, HdfsShufflesEqualDistances) {
  auto policy = MakeHdfsRetrievalPolicy();
  NetworkLocation client;  // off-cluster: all distance 6
  std::set<MediumId> first_seen;
  for (int i = 0; i < 50; ++i) {
    std::vector<MediumId> ordered =
        policy->OrderReplicas(state_, client, {0, 1, 2, 3}, &rng_);
    first_seen.insert(ordered[0]);
  }
  // With shuffling, several media should appear in the first slot.
  EXPECT_GT(first_seen.size(), 1u);
}

TEST_F(RetrievalTest, EmptyReplicaListYieldsEmptyOrder) {
  auto policy = MakeOctopusRetrievalPolicy();
  EXPECT_TRUE(
      policy->OrderReplicas(state_, NetworkLocation(), {}, &rng_).empty());
}

TEST_F(RetrievalTest, UnknownMediumHandledGracefully) {
  auto policy = MakeOctopusRetrievalPolicy();
  std::vector<MediumId> ordered =
      policy->OrderReplicas(state_, NetworkLocation(), {99, 0}, &rng_);
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0], 0);  // the known, live replica first
  EXPECT_EQ(ordered[1], 99);
}

}  // namespace
}  // namespace octo
