// Crash-consistency suite for the metadata durability subsystem
// (DESIGN.md §14): the segmented checksummed edit log and its torn-tail
// recovery, the CRC-trailed atomic image store, fail-stop journaling in
// the Master, fuzzy (non-stalling) checkpoints racing live mutations,
// and a seeded chaos sweep that crashes the master at every injection
// point and proves no acked edit is ever lost.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/master.h"
#include "common/clock.h"
#include "common/random.h"
#include "fault/fault.h"
#include "namespacefs/edit_log.h"
#include "namespacefs/fsimage.h"
#include "namespacefs/image_store.h"
#include "namespacefs/namespace_tree.h"
#include "namespacefs/path.h"

namespace octo {
namespace {

namespace fs = std::filesystem;

const UserContext kRoot{"root", {}};

// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Offsets one past each complete frame (`<len>\t<crc>\t<payload>\n`) of a
// segment file, computed independently of the EditLog parser. Frame 0 is
// the segment header, frames 1.. are records.
std::vector<size_t> FrameEnds(const std::string& bytes) {
  std::vector<size_t> ends;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t tab = bytes.find('\t', pos);
    if (tab == std::string::npos) break;
    size_t len = std::stoul(bytes.substr(pos, tab - pos));
    size_t end = tab + 1 + 8 + 1 + len + 1;  // \t crc8 \t payload \n
    if (end > bytes.size()) break;
    ends.push_back(end);
    pos = end;
  }
  return ends;
}

// ---------------------------------------------------------------------------
// Segmented edit log

TEST(SegmentedEditLogTest, SegmentLifecycleRoundTrip) {
  ScratchDir dir("octo_durability_lifecycle");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    (*log)->LogMkdirs("/a");
    (*log)->LogMkdirs("/a/b");
    auto rolled = (*log)->RollSegment();
    ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
    EXPECT_EQ(*rolled, 2);
    (*log)->LogRename("/a/b", "/c");
    ASSERT_TRUE((*log)->Commit().ok());
  }
  EXPECT_TRUE(fs::exists(dir.path() / "edits_0-1"));
  EXPECT_TRUE(fs::exists(dir.path() / "edits_inprogress_2"));
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_EQ((*log)->size(), 3);
    EXPECT_EQ((*log)->entries()[0], "MKDIR\t/a");
    EXPECT_EQ((*log)->entries()[2], "RENAME\t/a/b\t/c");
    // Still appendable after reopen.
    (*log)->LogMkdirs("/d");
    ASSERT_TRUE((*log)->Commit().ok());
  }
  auto log = EditLog::OpenSegmented(dir.str());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->size(), 4);
}

TEST(SegmentedEditLogTest, EmptyRollIsANoop) {
  ScratchDir dir("octo_durability_emptyroll");
  auto log = EditLog::OpenSegmented(dir.str());
  ASSERT_TRUE(log.ok());
  auto first = (*log)->RollSegment();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  EXPECT_FALSE(fs::exists(dir.path() / "edits_0--1"));
}

TEST(SegmentedEditLogTest, PurgeKeepsTailSegments) {
  ScratchDir dir("octo_durability_purge");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 4; ++i) (*log)->LogMkdirs("/p" + std::to_string(i));
    ASSERT_TRUE((*log)->RollSegment().ok());  // edits_0-3
    for (int i = 4; i < 6; ++i) (*log)->LogMkdirs("/p" + std::to_string(i));
    ASSERT_TRUE((*log)->RollSegment().ok());  // edits_4-5
    (*log)->LogMkdirs("/p6");
    ASSERT_TRUE((*log)->Commit().ok());
    ASSERT_TRUE((*log)->PurgeSegmentsBefore(4).ok());
    // In-memory records survive a purge (live Backup sync reads them).
    EXPECT_EQ((*log)->size(), 7);
    EXPECT_EQ((*log)->base_txid(), 0);
  }
  EXPECT_FALSE(fs::exists(dir.path() / "edits_0-3"));
  EXPECT_TRUE(fs::exists(dir.path() / "edits_4-5"));
  auto log = EditLog::OpenSegmented(dir.str());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->base_txid(), 4);
  EXPECT_EQ((*log)->size(), 7);
  std::vector<std::string> tail;
  EXPECT_EQ((*log)->ReadEntries(0, &tail), 4);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], "MKDIR\t/p4");
}

// Truncate the in-progress segment at every byte offset: replay must
// recover exactly the records whose frames survived whole, and the log
// must stay appendable — the torn tail is cut, never trusted.
TEST(SegmentedEditLogTest, TornTailTruncationSweepEveryByte) {
  ScratchDir dir("octo_durability_trunc");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 6; ++i) (*log)->LogMkdirs("/d" + std::to_string(i));
    ASSERT_TRUE((*log)->Commit().ok());
  }
  const fs::path seg = dir.path() / "edits_inprogress_0";
  const std::string bytes = ReadFile(seg);
  const std::vector<size_t> ends = FrameEnds(bytes);
  ASSERT_EQ(ends.size(), 7u);  // header + 6 records
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    ScratchDir copy("octo_durability_trunc_case");
    WriteFile(copy.path() / "edits_inprogress_0", bytes.substr(0, cut));
    auto log = EditLog::OpenSegmented(copy.str());
    ASSERT_TRUE(log.ok()) << "cut=" << cut << ": " << log.status().ToString();
    size_t whole_frames = 0;
    while (whole_frames < ends.size() && ends[whole_frames] <= cut) {
      ++whole_frames;
    }
    const int64_t expect =
        whole_frames == 0 ? 0 : static_cast<int64_t>(whole_frames - 1);
    ASSERT_EQ((*log)->size(), expect) << "cut=" << cut;
    for (int64_t i = 0; i < expect; ++i) {
      EXPECT_EQ((*log)->entries()[static_cast<size_t>(i)],
                "MKDIR\t/d" + std::to_string(i));
    }
    // Recovery re-opens for appending past the recovered prefix.
    (*log)->LogMkdirs("/after");
    ASSERT_TRUE((*log)->Commit().ok()) << "cut=" << cut;
    log->reset();
    auto reopened = EditLog::OpenSegmented(copy.str());
    ASSERT_TRUE(reopened.ok()) << "cut=" << cut;
    ASSERT_EQ((*reopened)->size(), expect + 1) << "cut=" << cut;
    EXPECT_EQ((*reopened)->entries()[static_cast<size_t>(expect)],
              "MKDIR\t/after");
  }
}

// Flip one bit at every byte offset of the in-progress segment: the CRC
// (or frame structure) must catch every flip, recovery must keep exactly
// the frames before the damaged one, and open must never crash or accept
// a damaged record.
TEST(SegmentedEditLogTest, BitFlipSweepRecoversLongestValidPrefix) {
  ScratchDir dir("octo_durability_flip");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 5; ++i) (*log)->LogMkdirs("/f" + std::to_string(i));
    ASSERT_TRUE((*log)->Commit().ok());
  }
  const std::string bytes = ReadFile(dir.path() / "edits_inprogress_0");
  const std::vector<size_t> ends = FrameEnds(bytes);
  ASSERT_EQ(ends.size(), 6u);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ (1 << (i % 8)));
    ScratchDir copy("octo_durability_flip_case");
    WriteFile(copy.path() / "edits_inprogress_0", damaged);
    auto log = EditLog::OpenSegmented(copy.str());
    ASSERT_TRUE(log.ok()) << "flip at " << i << ": "
                          << log.status().ToString();
    size_t damaged_frame = 0;
    while (damaged_frame < ends.size() && ends[damaged_frame] <= i) {
      ++damaged_frame;
    }
    const int64_t expect =
        damaged_frame == 0 ? 0 : static_cast<int64_t>(damaged_frame - 1);
    ASSERT_EQ((*log)->size(), expect) << "flip at " << i;
    for (int64_t r = 0; r < expect; ++r) {
      EXPECT_EQ((*log)->entries()[static_cast<size_t>(r)],
                "MKDIR\t/f" + std::to_string(r));
    }
  }
}

// Finalized segments were fsynced before their rename: damage there is
// rot, not a crash artifact, and recovery must refuse it outright rather
// than silently truncate history that later segments build on.
TEST(SegmentedEditLogTest, BitFlipInFinalizedSegmentIsCorruption) {
  ScratchDir dir("octo_durability_flip_final");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) (*log)->LogMkdirs("/g" + std::to_string(i));
    ASSERT_TRUE((*log)->RollSegment().ok());
  }
  const fs::path seg = dir.path() / "edits_0-2";
  ASSERT_TRUE(fs::exists(seg));
  const std::string bytes = ReadFile(seg);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
    ScratchDir copy("octo_durability_flip_final_case");
    WriteFile(copy.path() / "edits_0-2", damaged);
    auto log = EditLog::OpenSegmented(copy.str());
    EXPECT_TRUE(!log.ok() && log.status().IsCorruption())
        << "flip at " << i << " was accepted";
  }
}

TEST(SegmentedEditLogTest, SegmentGapIsCorruption) {
  ScratchDir dir("octo_durability_gap");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 4; ++i) (*log)->LogMkdirs("/h" + std::to_string(i));
    ASSERT_TRUE((*log)->RollSegment().ok());
    (*log)->LogMkdirs("/h4");
    ASSERT_TRUE((*log)->RollSegment().ok());
  }
  // Removing a *middle* segment tears a hole no replay can cross.
  // (Removing the oldest would look like a legitimate purge.)
  ASSERT_TRUE(fs::remove(dir.path() / "edits_4-4"));
  auto log = EditLog::OpenSegmented(dir.str());
  EXPECT_TRUE(!log.ok() && log.status().IsCorruption())
      << log.status().ToString();
}

TEST(SegmentedEditLogTest, MissingInProgressAfterFinalizeIsClean) {
  // Crash between finalize-rename and the next segment's creation: only
  // finalized segments on disk. Open starts a fresh in-progress tail.
  ScratchDir dir("octo_durability_nofresh");
  {
    auto log = EditLog::OpenSegmented(dir.str());
    ASSERT_TRUE(log.ok());
    (*log)->LogMkdirs("/x");
    ASSERT_TRUE((*log)->RollSegment().ok());
  }
  fs::remove(dir.path() / "edits_inprogress_1");
  auto log = EditLog::OpenSegmented(dir.str());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->size(), 1);
  (*log)->LogMkdirs("/y");
  EXPECT_TRUE((*log)->Commit().ok());
}

// ---------------------------------------------------------------------------
// Write-error handling (satellite: ENOSPC never loses an acked edit)

TEST(SegmentedEditLogTest, StickyErrorAfterInjectedDiskFull) {
  ScratchDir dir("octo_durability_enospc");
  auto opened = EditLog::OpenSegmented(dir.str());
  ASSERT_TRUE(opened.ok());
  EditLog* log = opened->get();
  std::atomic<int> failures{0};
  log->SetWriteFaultHook([&]() {
    EditLog::WriteFault fault;
    if (failures.fetch_add(1) == 0) fault.status = Status::NoSpace("disk full");
    return fault;
  });
  log->LogMkdirs("/lost");
  EXPECT_TRUE(log->Commit().IsNoSpace());
  // The failure is sticky even though the hook only fires once: the log
  // must not resume as if nothing happened.
  log->LogMkdirs("/also-lost");
  EXPECT_TRUE(log->Commit().IsNoSpace());
  EXPECT_TRUE(log->last_io_error().IsNoSpace());
  EXPECT_EQ(log->durable_records(), 0);
}

TEST(MasterDurabilityTest, InjectedDiskFullNeverLosesAckedEdit) {
  ScratchDir dir("octo_durability_master_enospc");
  fault::FaultRegistry registry(/*seed=*/1);
  ManualClock clock;
  std::vector<std::string> acked;
  {
    MasterOptions options;
    options.metadata_dir = dir.str();
    Master master(options, &clock);
    master.InstallDurabilityFaults(&registry);
    for (int i = 0; i < 5; ++i) {
      std::string path = "/acked" + std::to_string(i);
      ASSERT_TRUE(master.Mkdirs(path, kRoot).ok());
      acked.push_back(path);
    }
    fault::FaultSpec spec;
    spec.site = fault::Site::kJournalDiskFull;
    spec.code = StatusCode::kNoSpace;
    spec.max_hits = 1;
    registry.Arm(spec);
    // The op whose journal write fails is NOT acked...
    EXPECT_TRUE(master.Mkdirs("/never-acked", kRoot).IsNoSpace());
    // ...and the master fail-stops: in safe mode, rejecting everything.
    EXPECT_TRUE(master.journal_failed());
    EXPECT_TRUE(master.in_safe_mode());
    Status st = master.Mkdirs("/after-failure", kRoot);
    EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
    // Not even the manual safe-mode override lifts a journal fail-stop.
    master.ForceExitSafeMode();
    EXPECT_TRUE(master.in_safe_mode());
  }
  // Crash + restart: every acked edit is there; the un-acked op is not.
  MasterOptions options;
  options.metadata_dir = dir.str();
  Master recovered(options, &clock);
  ASSERT_TRUE(recovered.RecoverFromLocalStorage().ok());
  for (const std::string& path : acked) {
    EXPECT_TRUE(recovered.namespace_tree().Exists(path)) << path;
  }
  EXPECT_FALSE(recovered.namespace_tree().Exists("/never-acked"));
  EXPECT_FALSE(recovered.namespace_tree().Exists("/after-failure"));
}

// ---------------------------------------------------------------------------
// Tolerant replay (ReplayMode::kRecovery)

TEST(RecoveryReplayTest, SkipsRecordsTheImageAlreadyAbsorbed) {
  ManualClock clock;
  NamespaceTree tree(&clock);
  EditLog journal;  // in-memory: generates exactly the Master's records
  ASSERT_TRUE(tree.Mkdirs("/a/b", kRoot).ok());
  journal.LogMkdirs("/a/b");
  ASSERT_TRUE(tree.CreateFile("/a/b/f", ReplicationVector::OfTotal(1),
                              kDefaultBlockSize, false, kRoot)
                  .ok());
  journal.LogCreate("/a/b/f", ReplicationVector::OfTotal(1),
                    kDefaultBlockSize, false, "writer");
  const std::vector<std::string> entries = journal.entries();
  // A fuzzy image that already holds every op's effect...
  NamespaceTree recovered(&clock);
  ASSERT_TRUE(
      FsImage::Deserialize(FsImage::Serialize(tree), &recovered).ok());
  // ...fails strict replay but sails through recovery replay.
  EXPECT_FALSE(EditLog::Replay(entries, 0, &recovered).ok());
  EditReplayInfo info;
  ASSERT_TRUE(EditLog::Replay(entries, 0, &recovered, &info,
                              ReplayMode::kRecovery)
                  .ok());
  // MKDIR replays idempotently; only the CREATE needed skipping.
  EXPECT_EQ(info.skipped_records, 1);
  // Lease bookkeeping still happens for skipped CREATEs.
  EXPECT_EQ(info.lease_holders.at("/a/b/f"), "writer");
  EXPECT_EQ(FsImage::Serialize(recovered), FsImage::Serialize(tree));
}

TEST(RecoveryReplayTest, AddBlockIsNeverAppliedTwice) {
  ManualClock clock;
  NamespaceTree tree(&clock);
  ASSERT_TRUE(tree.CreateFile("/f", ReplicationVector::OfTotal(1),
                              kDefaultBlockSize, false, kRoot)
                  .ok());
  ASSERT_TRUE(tree.AddBlock("/f", BlockInfo{42, 100}).ok());
  NamespaceTree recovered(&clock);
  ASSERT_TRUE(
      FsImage::Deserialize(FsImage::Serialize(tree), &recovered).ok());
  EditLog journal;
  journal.LogAddBlock("/f", BlockInfo{42, 100});
  const std::vector<std::string> entries = journal.entries();
  EditReplayInfo info;
  ASSERT_TRUE(EditLog::Replay(entries, 0, &recovered, &info,
                              ReplayMode::kRecovery)
                  .ok());
  EXPECT_EQ(info.skipped_records, 1);
  auto blocks = recovered.GetBlocks("/f");
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 1u);
}

TEST(RecoveryReplayTest, RenameWithBothSidesPresentDropsStaleSource) {
  // The fuzzy walk serialized /src before the rename and the patch
  // appended /dst after it: the image holds both. Tail replay of the
  // RENAME must drop the stale pre-rename copy, not fail.
  ManualClock clock;
  NamespaceTree image(&clock);
  ASSERT_TRUE(image.Mkdirs("/src/kid", kRoot).ok());
  ASSERT_TRUE(image.Mkdirs("/dst/kid", kRoot).ok());
  EditReplayInfo info;
  ASSERT_TRUE(EditLog::Replay({"RENAME\t/src\t/dst"}, 0, &image, &info,
                              ReplayMode::kRecovery)
                  .ok());
  EXPECT_EQ(info.rename_fixups, 1);
  EXPECT_FALSE(image.Exists("/src"));
  EXPECT_TRUE(image.Exists("/dst/kid"));
}

TEST(RecoveryReplayTest, MalformedRecordStillFails) {
  ManualClock clock;
  NamespaceTree tree(&clock);
  EXPECT_TRUE(EditLog::Replay({"BOGUS\t/x"}, 0, &tree, nullptr,
                              ReplayMode::kRecovery)
                  .IsCorruption());
}

// ---------------------------------------------------------------------------
// FsImage hardening (satellite: hostile names cannot forge boundaries)

TEST(FsImageHardeningTest, ControlBytesInPathsAreRejectedAtTheGate) {
  EXPECT_FALSE(NormalizePath("/a\nb").ok());
  EXPECT_FALSE(NormalizePath("/a\tb").ok());
  EXPECT_FALSE(NormalizePath(std::string("/a\x01" "b", 4)).ok());
  EXPECT_FALSE(NormalizePath("/a\x7f").ok());
  EXPECT_TRUE(NormalizePath("/a%b").ok());  // '%' is a legal name byte
}

TEST(FsImageHardeningTest, HostileOwnerAndGroupRoundTrip) {
  ManualClock clock;
  NamespaceTree tree(&clock);
  ASSERT_TRUE(tree.Mkdirs("/d", kRoot).ok());
  // Owner/group are caller-supplied strings that never pass the path
  // gate; tabs and newlines here once forged extra image fields.
  ASSERT_TRUE(tree.SetOwner("/d", "evil\tuser", "new\nline\rgrp", kRoot).ok());
  ASSERT_TRUE(tree.Mkdirs("/pct", kRoot).ok());
  ASSERT_TRUE(tree.SetOwner("/pct", "100%", "%25", kRoot).ok());
  std::string image = FsImage::Serialize(tree);
  ManualClock clock2;
  NamespaceTree loaded(&clock2);
  ASSERT_TRUE(FsImage::Deserialize(image, &loaded).ok());
  EXPECT_EQ(FsImage::Serialize(loaded), image);
  auto st = loaded.GetFileStatus("/d", kRoot);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->owner, "evil\tuser");
  EXPECT_EQ(st->group, "new\nline\rgrp");
  st = loaded.GetFileStatus("/pct", kRoot);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->owner, "100%");
  EXPECT_EQ(st->group, "%25");
}

TEST(FsImageHardeningTest, RandomizedRoundTripFuzz) {
  // Random trees with adversarial owners/groups: serialize -> load ->
  // serialize must be a fixed point, byte for byte.
  const char kNameChars[] = "abz019.%~^= !#$&'()+,-@[]{}";
  Random rng(20260808);
  for (int round = 0; round < 30; ++round) {
    ManualClock clock;
    NamespaceTree tree(&clock);
    std::vector<std::string> dirs = {"/"};
    for (int i = 0; i < 40; ++i) {
      std::string name;
      for (int c = 0, n = 1 + static_cast<int>(rng.Uniform(8)); c < n; ++c) {
        name += kNameChars[rng.Uniform(sizeof(kNameChars) - 1)];
      }
      const std::string& parent = dirs[rng.Uniform(dirs.size())];
      std::string path = (parent == "/" ? "" : parent) + "/" + name;
      auto normalized = NormalizePath(path);
      if (!normalized.ok()) continue;
      if (rng.Uniform(3) == 0) {
        if (!tree.Mkdirs(*normalized, kRoot).ok()) continue;
        dirs.push_back(*normalized);
        std::string owner, group;
        for (int c = 0; c < 6; ++c) {
          owner += static_cast<char>(rng.Uniform(96) + 32);
          group += static_cast<char>(rng.Uniform(256));
        }
        ASSERT_TRUE(tree.SetOwner(*normalized, owner, group, kRoot).ok());
      } else {
        if (!tree.CreateFile(*normalized, ReplicationVector::OfTotal(1),
                             kDefaultBlockSize, false, kRoot)
                 .ok()) {
          continue;
        }
        ASSERT_TRUE(
            tree.AddBlock(*normalized,
                          BlockInfo{static_cast<BlockId>(i + 1),
                                    static_cast<int64_t>(rng.Uniform(4096))})
                .ok());
        if (rng.Uniform(2) == 0) {
          ASSERT_TRUE(tree.CompleteFile(*normalized).ok());
        }
      }
    }
    std::string image = FsImage::Serialize(tree);
    ManualClock clock2;
    NamespaceTree loaded(&clock2);
    ASSERT_TRUE(FsImage::Deserialize(image, &loaded).ok())
        << "round " << round;
    ASSERT_EQ(FsImage::Serialize(loaded), image) << "round " << round;
  }
}

TEST(FsImageHardeningTest, LegacyV1ImagesStillLoadVerbatim) {
  // A version-1 image (written before field escaping existed) is the
  // version-2 body with escape-free names and a "1" in the header.
  ManualClock clock;
  NamespaceTree tree(&clock);
  ASSERT_TRUE(tree.Mkdirs("/legacy/dir", kRoot).ok());
  ASSERT_TRUE(tree.CreateFile("/legacy/file", ReplicationVector::OfTotal(1),
                              kDefaultBlockSize, false, kRoot)
                  .ok());
  ASSERT_TRUE(tree.SetQuota("/legacy", kTotalSpaceSlot, 1 << 20).ok());
  std::string v2 = FsImage::Serialize(tree);
  std::string v1 = v2;
  const std::string header = "OCTO_FSIMAGE\t2\n";
  ASSERT_EQ(v1.compare(0, header.size(), header), 0);
  v1[header.size() - 2] = '1';
  ManualClock clock2;
  NamespaceTree loaded(&clock2);
  ASSERT_TRUE(FsImage::Deserialize(v1, &loaded).ok());
  EXPECT_TRUE(loaded.Exists("/legacy/dir"));
  // Reserializing upgrades the header but preserves every inode.
  EXPECT_EQ(FsImage::Serialize(loaded), v2);
}

// ---------------------------------------------------------------------------
// Image store

TEST(ImageStoreTest, RoundTripRetentionAndFallbackOrder) {
  ScratchDir dir("octo_durability_imgstore");
  auto store = ImageStore::Open(dir.str(), /*retain=*/2);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->WriteImage(5, "image-at-5").ok());
  ASSERT_TRUE((*store)->WriteImage(10, "image-at-10").ok());
  ASSERT_TRUE((*store)->WriteImage(15, "image-at-15").ok());
  EXPECT_EQ((*store)->ListImages(), (std::vector<int64_t>{15, 10}));
  EXPECT_EQ((*store)->OldestRetainedTxid(), 10);
  EXPECT_FALSE(fs::exists(dir.path() / "fsimage_5"));
  auto payload = (*store)->ReadImage(15);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "image-at-15");
  // A fresh open sees the same set.
  auto reopened = ImageStore::Open(dir.str(), 2);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->ListImages(), (std::vector<int64_t>{15, 10}));
}

TEST(ImageStoreTest, OnDiskDamageIsDetected) {
  ScratchDir dir("octo_durability_imgrot");
  auto store = ImageStore::Open(dir.str(), 2);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->WriteImage(3, "payload that will rot").ok());
  fs::path file = dir.path() / "fsimage_3";
  std::string bytes = ReadFile(file);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    WriteFile(file, damaged);
    EXPECT_TRUE((*store)->ReadImage(3).status().IsCorruption())
        << "flip at " << i;
  }
  WriteFile(file, bytes.substr(0, bytes.size() / 2));  // truncation
  EXPECT_TRUE((*store)->ReadImage(3).status().IsCorruption());
}

TEST(ImageStoreTest, StrayTmpFilesAreSweptAtOpen) {
  ScratchDir dir("octo_durability_imgtmp");
  WriteFile(dir.path() / "fsimage_99.tmp", "half-written");
  auto store = ImageStore::Open(dir.str(), 2);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->ListImages().empty());
  EXPECT_FALSE(fs::exists(dir.path() / "fsimage_99.tmp"));
}

TEST(ImageStoreTest, InjectedFaultsBehaveLikeTheRealFailures) {
  ScratchDir dir("octo_durability_imgfault");
  auto store = ImageStore::Open(dir.str(), 2);
  ASSERT_TRUE(store.ok());
  int mode = 0;
  (*store)->SetWriteFaultHook([&]() {
    ImageStore::WriteFault fault;
    if (mode == 1) fault.corrupt = true;
    if (mode == 2) fault.crash_before_rename = true;
    return fault;
  });
  mode = 1;  // silent rot: the write succeeds, the read fails
  ASSERT_TRUE((*store)->WriteImage(7, "will rot in flight").ok());
  EXPECT_TRUE((*store)->ReadImage(7).status().IsCorruption());
  mode = 2;  // crash before rename: no image, only a tmp corpse
  EXPECT_TRUE((*store)->WriteImage(9, "never lands").IsIoError());
  EXPECT_EQ((*store)->ListImages(), (std::vector<int64_t>{7}));
  EXPECT_TRUE(fs::exists(dir.path() / "fsimage_9.tmp"));
  auto reopened = ImageStore::Open(dir.str(), 2);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(fs::exists(dir.path() / "fsimage_9.tmp"));
}

// ---------------------------------------------------------------------------
// Fuzzy checkpoints

MasterOptions DurableOptions(const std::string& dir) {
  MasterOptions options;
  options.metadata_dir = dir;
  return options;
}

TEST(FuzzyCheckpointTest, QuiescentCheckpointRecoversExactly) {
  ScratchDir dir("octo_durability_ckpt_quiet");
  ManualClock clock;
  Master master(DurableOptions(dir.str()), &clock);
  ASSERT_TRUE(master.Mkdirs("/a/b/c", kRoot).ok());
  ASSERT_TRUE(master.Create("/a/b/f", ReplicationVector::OfTotal(2),
                            kDefaultBlockSize, false, kRoot, "writer")
                  .ok());
  ASSERT_TRUE(master.SetQuota("/a", kTotalSpaceSlot, 1 << 20).ok());
  ASSERT_TRUE(master.SetOwner("/a/b", "alice", "eng", kRoot).ok());
  auto txid = master.WriteCheckpoint();
  ASSERT_TRUE(txid.ok()) << txid.status().ToString();
  // Post-checkpoint edits land in the tail.
  ASSERT_TRUE(master.Mkdirs("/post", kRoot).ok());
  ASSERT_TRUE(master.Rename("/a/b/c", "/a/moved", kRoot).ok());
  ASSERT_TRUE(master.Create("/post/g", ReplicationVector::OfTotal(1),
                            kDefaultBlockSize, false, kRoot, "tail-writer")
                  .ok());

  Master recovered(DurableOptions(dir.str()), &clock);
  ASSERT_TRUE(recovered.RecoverFromLocalStorage().ok());
  EXPECT_EQ(FsImage::Serialize(recovered.namespace_tree()),
            FsImage::Serialize(master.namespace_tree()));
  // A CREATE journaled after the checkpoint restores its exact holder;
  // one folded into the image keeps the lease but loses the name (the
  // image does not carry holders — recovery grants a placeholder).
  auto holder = recovered.lease_manager().Holder("/post/g");
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();
  EXPECT_EQ(*holder, "tail-writer");
  holder = recovered.lease_manager().Holder("/a/b/f");
  ASSERT_TRUE(holder.ok()) << holder.status().ToString();
  EXPECT_FALSE(holder->empty());
}

TEST(FuzzyCheckpointTest, OnlyOneCheckpointRunsAtATime) {
  ScratchDir dir("octo_durability_ckpt_single");
  ManualClock clock;
  Master master(DurableOptions(dir.str()), &clock);
  EXPECT_TRUE(master.WriteCheckpoint().ok());
  // Without a metadata_dir there is nowhere to checkpoint to.
  Master ephemeral(MasterOptions{}, &clock);
  EXPECT_TRUE(ephemeral.WriteCheckpoint().status().IsFailedPrecondition());
}

TEST(FuzzyCheckpointTest, CorruptNewestImageFallsBackToOlder) {
  ScratchDir dir("octo_durability_ckpt_fallback");
  ManualClock clock;
  std::string live_image;
  {
    Master master(DurableOptions(dir.str()), &clock);
    ASSERT_TRUE(master.Mkdirs("/first", kRoot).ok());
    ASSERT_TRUE(master.WriteCheckpoint().ok());
    ASSERT_TRUE(master.Mkdirs("/second", kRoot).ok());
    auto txid = master.WriteCheckpoint();
    ASSERT_TRUE(txid.ok());
    ASSERT_TRUE(master.Mkdirs("/third", kRoot).ok());
    live_image = FsImage::Serialize(master.namespace_tree());
    // Rot the newest image on disk.
    fs::path newest = dir.path() / ("fsimage_" + std::to_string(*txid));
    std::string bytes = ReadFile(newest);
    bytes[bytes.size() / 3] ^= 0x20;
    WriteFile(newest, bytes);
  }
  Master recovered(DurableOptions(dir.str()), &clock);
  ASSERT_TRUE(recovered.RecoverFromLocalStorage().ok());
  EXPECT_EQ(FsImage::Serialize(recovered.namespace_tree()), live_image);
  EXPECT_TRUE(recovered.namespace_tree().Exists("/third"));
}

TEST(FuzzyCheckpointTest, NoImageAtAllReplaysTheWholeJournal) {
  ScratchDir dir("octo_durability_ckpt_noimage");
  ManualClock clock;
  std::string live_image;
  {
    Master master(DurableOptions(dir.str()), &clock);
    ASSERT_TRUE(master.Mkdirs("/only/journal", kRoot).ok());
    ASSERT_TRUE(master.Rename("/only/journal", "/renamed", kRoot).ok());
    live_image = FsImage::Serialize(master.namespace_tree());
  }
  Master recovered(DurableOptions(dir.str()), &clock);
  ASSERT_TRUE(recovered.RecoverFromLocalStorage().ok());
  EXPECT_EQ(FsImage::Serialize(recovered.namespace_tree()), live_image);
}

// Mutator threads hammer the namespace while checkpoints run; after
// quiescing, recovery from disk must reproduce the live namespace byte
// for byte. Exercises the chunked walk racing creates/deletes and the
// rename patch (renames from unvisited into visited regions).
TEST(FuzzyCheckpointTest, CheckpointRacingMutationsRecoversExactly) {
  ScratchDir dir("octo_durability_ckpt_race");
  ManualClock clock;
  Master master(DurableOptions(dir.str()), &clock);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 300;
  std::vector<std::thread> mutators;
  mutators.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    mutators.emplace_back([&master, t] {
      Random rng(1000 + static_cast<uint64_t>(t));
      const std::string base = "/w" + std::to_string(t);
      EXPECT_TRUE(master.Mkdirs(base, kRoot).ok());
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string p = base + "/n" + std::to_string(i);
        switch (rng.Uniform(5)) {
          case 0:
            (void)master.Mkdirs(p + "/deep", kRoot);
            break;
          case 1:
            (void)master.Create(p, ReplicationVector::OfTotal(1),
                                kDefaultBlockSize, false, kRoot, "w");
            break;
          case 2:
            // Renames from fresh (likely unvisited) paths into earlier
            // (likely visited) ones — the checkpoint patch's worst case.
            (void)master.Mkdirs(p + "/sub", kRoot);
            (void)master.Rename(
                p, base + "/r" + std::to_string(rng.Uniform(1 + i)), kRoot);
            break;
          case 3:
            (void)master.Delete(base + "/n" + std::to_string(rng.Uniform(1 + i)),
                                true, kRoot);
            break;
          case 4:
            (void)master.SetQuota(base, kTotalSpaceSlot,
                                  1 << (20 + rng.Uniform(4)));
            break;
        }
      }
    });
  }
  int checkpoints = 0;
  std::atomic<bool> done{false};
  std::thread checkpointer([&] {
    // do-while: under heavy machine load this thread can be scheduled
    // after the mutators already finished; at least one checkpoint must
    // still be written for the recovery comparison to mean anything.
    do {
      auto txid = master.WriteCheckpoint();
      if (!txid.ok()) {
        ADD_FAILURE() << "checkpoint failed: " << txid.status().ToString();
        return;
      }
      ++checkpoints;
    } while (!done.load(std::memory_order_acquire));
  });
  for (auto& m : mutators) m.join();
  done.store(true, std::memory_order_release);
  checkpointer.join();
  ASSERT_GT(checkpoints, 0);

  Master recovered(DurableOptions(dir.str()), &clock);
  ASSERT_TRUE(recovered.RecoverFromLocalStorage().ok());
  EXPECT_EQ(FsImage::Serialize(recovered.namespace_tree()),
            FsImage::Serialize(master.namespace_tree()));
}

// ---------------------------------------------------------------------------
// Chaos sweep: crash the master at every durability injection point
// while checkpoints race live mutations; recovery must never lose an
// acked op, and may at most additionally contain the one op that was
// in flight (journaled but not acked) when the crash hit.

class ShadowedMaster {
 public:
  ShadowedMaster(const std::string& dir, Clock* clock)
      : shadow_(clock), master_(DurableOptions(dir), clock) {}

  Master& master() { return master_; }
  NamespaceTree& shadow() { return shadow_; }

  // Applies one random namespace op to the master; mirrors it into the
  // shadow tree only when the master acked. Returns false once the
  // master has fail-stopped (the "crash").
  bool RandomOp(Random* rng, int i) {
    const std::string p = "/c" + std::to_string(rng->Uniform(40));
    const std::string q = "/c" + std::to_string(rng->Uniform(40));
    Status st;
    switch (rng->Uniform(8)) {
      case 0:
        st = Apply(master_.Mkdirs(p + "/d" + std::to_string(i), kRoot),
                   [p, i](NamespaceTree* t) {
                     return t->Mkdirs(p + "/d" + std::to_string(i), kRoot);
                   });
        break;
      case 1:
        st = Apply(master_.Create(p + "/f", ReplicationVector::OfTotal(1),
                                  kDefaultBlockSize, false, kRoot, "w"),
                   [p](NamespaceTree* t) {
                     return t->CreateFile(p + "/f", ReplicationVector::OfTotal(1),
                                          kDefaultBlockSize, false, kRoot);
                   });
        break;
      case 2:
        st = Apply(master_.CompleteFile(p + "/f", "w"), [p](NamespaceTree* t) {
          return t->CompleteFile(p + "/f");
        });
        break;
      case 3:
        st = Apply(master_.Rename(p, q, kRoot), [p, q](NamespaceTree* t) {
          return t->Rename(p, q, kRoot);
        });
        break;
      case 4:
        // skip_trash: a trash-move journals several records, which would
        // widen the crash ambiguity past the one-op window proven below.
        st = Apply(master_.Delete(p, true, kRoot, /*skip_trash=*/true)
                       .status(),
                   [p](NamespaceTree* t) {
                     return t->Delete(p, true, kRoot).status();
                   });
        break;
      case 5:
        st = Apply(master_.SetQuota(p, kTotalSpaceSlot, 1 << 20),
                   [p](NamespaceTree* t) {
                     return t->SetQuota(p, kTotalSpaceSlot, 1 << 20);
                   });
        break;
      case 6:
        st = Apply(master_.SetOwner(p, "u" + std::to_string(i), "g", kRoot),
                   [p, i](NamespaceTree* t) {
                     return t->SetOwner(p, "u" + std::to_string(i), "g",
                                        kRoot);
                   });
        break;
      case 7:
        st = Apply(master_.SetMode(p, 0700, kRoot), [p](NamespaceTree* t) {
          return t->SetMode(p, 0700, kRoot);
        });
        break;
    }
    // A journal failure surfaces as the injected code (first op) or
    // Unavailable (every later one): the master is dead to mutations.
    return !master_.journal_failed();
  }

  // The op that failed its journal commit was durable-or-not depending on
  // where the tear hit: recovery may legitimately contain it. Re-running
  // the shadow apply for it makes the "with the pending op" candidate.
  const std::function<Status(NamespaceTree*)>& pending_op() const {
    return pending_;
  }

 private:
  template <typename Fn>
  Status Apply(Status st, Fn&& shadow_apply) {
    if (st.ok()) {
      Status mirrored = shadow_apply(&shadow_);
      EXPECT_TRUE(mirrored.ok())
          << "shadow diverged: " << mirrored.ToString();
    } else if (master_.journal_failed() && pending_ == nullptr) {
      pending_ = shadow_apply;
    }
    return st;
  }

  NamespaceTree shadow_;
  Master master_;
  std::function<Status(NamespaceTree*)> pending_;
};

TEST(DurabilityChaosTest, CrashAtEveryInjectionPointLosesNoAckedOp) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ScratchDir dir("octo_durability_chaos_" + std::to_string(seed));
    ManualClock clock;
    fault::FaultRegistry registry(seed);
    Random rng(seed * 7919);
    std::string expect_without, expect_with;
    {
      ShadowedMaster sm(dir.str(), &clock);
      sm.master().InstallDurabilityFaults(&registry);
      std::atomic<bool> done{false};
      std::thread checkpointer([&] {
        // Races image writes (and their injected faults) against the
        // mutator. Failures are fine — a checkpoint that dies mid-write
        // must simply not damage recovery.
        while (!done.load(std::memory_order_acquire)) {
          (void)sm.master().WriteCheckpoint();
          std::this_thread::yield();
        }
      });
      const int ops = 200 + static_cast<int>(rng.Uniform(200));
      for (int i = 0; i < ops; ++i) {
        // Keep arming random durability faults; most are one-shot.
        if (rng.Uniform(12) == 0) {
          fault::FaultSpec spec;
          spec.max_hits = 1;
          switch (rng.Uniform(4)) {
            case 0:
              spec.site = fault::Site::kJournalTornWrite;
              spec.torn_bytes = static_cast<int64_t>(rng.Uniform(64));
              break;
            case 1:
              spec.site = fault::Site::kJournalDiskFull;
              spec.code = StatusCode::kNoSpace;
              break;
            case 2:
              spec.site = fault::Site::kImageCorrupt;
              break;
            case 3:
              spec.site = fault::Site::kImageCrashMidRename;
              break;
          }
          registry.Arm(spec);
        }
        if (!sm.RandomOp(&rng, i)) break;  // fail-stopped: crash now
      }
      done.store(true, std::memory_order_release);
      checkpointer.join();
      expect_without = FsImage::Serialize(sm.shadow());
      if (sm.pending_op() != nullptr) {
        Status st = sm.pending_op()(&sm.shadow());
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
      expect_with = FsImage::Serialize(sm.shadow());
      // Master destroyed here — the crash.
    }
    registry.ClearAll();  // recovery runs on healthy hardware
    Master recovered(DurableOptions(dir.str()), &clock);
    Status st = recovered.RecoverFromLocalStorage();
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
    std::string got = FsImage::Serialize(recovered.namespace_tree());
    EXPECT_TRUE(got == expect_without || got == expect_with)
        << "seed " << seed
        << ": recovered namespace matches neither the acked-ops shadow nor "
           "the shadow plus the one in-flight op";
  }
}

}  // namespace
}  // namespace octo
