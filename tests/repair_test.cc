// Repair-plane tests: the prioritized/throttled repair scheduler, worker
// decommission and maintenance draining, the lockstep/double-queue
// regression around expired in-flight copies, and a seeded mass-failure
// chaos sweep (a whole rack — ~1/3 of the cluster — crashes at once)
// asserting full-RF convergence, per-worker in-flight caps, and zero
// acked-data loss.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/units.h"
#include "fault/fault.h"

namespace octo {
namespace {

using fault::FaultRegistry;
using fault::Site;

ClusterSpec RepairSpec(int num_racks = 2, int workers_per_rack = 3) {
  ClusterSpec spec;
  spec.num_racks = num_racks;
  spec.workers_per_rack = workers_per_rack;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd, hdd};
  return spec;
}

void AdvanceSim(Cluster* cluster, double seconds) {
  cluster->simulation()->Schedule(seconds, [] {});
  cluster->simulation()->RunUntilIdle();
}

WorkerId WorkerOfMedium(Cluster* cluster, MediumId medium) {
  const MediumInfo* info =
      cluster->master()->cluster_state().FindMedium(medium);
  return info != nullptr ? info->worker : kInvalidWorker;
}

/// All block ids known to the master.
std::vector<BlockId> AllBlocks(Cluster* cluster) {
  std::vector<BlockId> ids;
  cluster->master()->block_manager().ForEach(
      [&](const BlockRecord& record) { ids.push_back(record.id); });
  return ids;
}

/// Asserts no worker's command queue holds two kCopyReplica commands for
/// the same (block, target medium) — the double-queue regression.
void ExpectNoDuplicateQueuedCopies(Cluster* cluster) {
  std::set<std::pair<BlockId, MediumId>> seen;
  for (WorkerId id : cluster->worker_ids()) {
    for (const WorkerCommand& cmd :
         cluster->master()->QueuedCommandsForTest(id)) {
      if (cmd.kind != WorkerCommand::Kind::kCopyReplica) continue;
      auto key = std::make_pair(cmd.block, cmd.target_medium);
      EXPECT_TRUE(seen.insert(key).second)
          << "block " << cmd.block << " double-queued onto medium "
          << cmd.target_medium;
    }
  }
}

// ---------------------------------------------------------------------------
// Graceful decommission

TEST(DecommissionTest, DrainsReplicasWhileServingReads) {
  auto cluster = std::move(Cluster::Create(RepairSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = 128 * 1024;
  std::string content(3 * 128 * 1024, 'd');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  ASSERT_TRUE(located.ok());
  WorkerId victim = (*located)[0].locations[0].worker;
  int64_t victim_replicas = 0;
  for (MediumId m :
       cluster->master()->cluster_state().MediaOnWorker(victim)) {
    victim_replicas += static_cast<int64_t>(
        cluster->master()->block_manager().BlocksOnMedium(m).size());
  }
  ASSERT_GE(victim_replicas, 1);
  ASSERT_TRUE(cluster->master()->StartDecommission(victim).ok());
  EXPECT_EQ(cluster->master()->worker_admin_state(victim),
            WorkerAdminState::kDecommissioning);
  // Double decommission of the same worker is idempotent-ish (allowed
  // while still draining), but an unknown worker is rejected.
  EXPECT_TRUE(cluster->master()->StartDecommission(9999).IsNotFound());

  // Mid-drain: the worker is alive, its replicas still registered, and
  // reads (which may be served from it) succeed.
  EXPECT_TRUE(cluster->master()->cluster_state().FindWorker(victim)->alive);
  EXPECT_TRUE(cluster->master()->cluster_state().WorkerDraining(victim));
  EXPECT_EQ(*fs.ReadFile("/f"), content);

  ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());

  // Drained: every block back at RF 3, nothing left on the victim, and
  // the lifecycle auto-advanced to kDecommissioned.
  for (BlockId id : AllBlocks(cluster.get())) {
    const BlockRecord* record = cluster->master()->block_manager().Find(id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->locations.size(), 3u);
    for (MediumId m : record->locations) {
      EXPECT_NE(WorkerOfMedium(cluster.get(), m), victim);
    }
  }
  EXPECT_TRUE(cluster->master()->WorkerDrained(victim));
  EXPECT_EQ(cluster->master()->worker_admin_state(victim),
            WorkerAdminState::kDecommissioned);
  RepairStats stats = cluster->master()->repair_stats();
  // One copy off the victim per replica it held, and one drain trim each.
  EXPECT_GE(stats.re_replications, victim_replicas);
  EXPECT_GE(stats.drained_replicas, victim_replicas);
  EXPECT_EQ(*fs.ReadFile("/f"), content);
  EXPECT_TRUE(
      cluster->master()->StartDecommission(victim).IsFailedPrecondition());
}

TEST(DecommissionTest, MaintenanceDrainsAndRecommissionRestoresService) {
  auto cluster = std::move(Cluster::Create(RepairSpec())).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = 128 * 1024;
  std::string content(128 * 1024, 'm');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  WorkerId victim = (*located)[0].locations[0].worker;
  ASSERT_TRUE(cluster->master()->StartMaintenance(victim).ok());
  EXPECT_EQ(cluster->master()->worker_admin_state(victim),
            WorkerAdminState::kMaintenance);
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  EXPECT_TRUE(cluster->master()->WorkerDrained(victim));
  // Maintenance never auto-advances to kDecommissioned: the operator
  // gets the worker back.
  EXPECT_EQ(cluster->master()->worker_admin_state(victim),
            WorkerAdminState::kMaintenance);

  ASSERT_TRUE(cluster->master()->Recommission(victim).ok());
  EXPECT_EQ(cluster->master()->worker_admin_state(victim),
            WorkerAdminState::kInService);
  EXPECT_FALSE(cluster->master()->cluster_state().WorkerDraining(victim));
  EXPECT_EQ(*fs.ReadFile("/f"), content);
}

TEST(DecommissionTest, CrashMidDrainRetargetsQueuedWork) {
  auto cluster = std::move(Cluster::Create(RepairSpec())).value();
  FaultRegistry faults(11);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = 128 * 1024;
  std::string content(4 * 128 * 1024, 'x');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  WorkerId victim = (*located)[0].locations[0].worker;
  ASSERT_TRUE(cluster->master()->StartDecommission(victim).ok());

  // First drain round dispatches decommission-driven copies, then the
  // victim dies mid-drain before its next heartbeat.
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  faults.Arm({.site = Site::kDecommissionCrash, .worker = victim,
              .max_hits = 1});
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_EQ(faults.hits(Site::kDecommissionCrash), 1);
  EXPECT_TRUE(cluster->IsStopped(victim));

  // The dead drain source's queued work is re-derived against survivors:
  // convergence back to RF 3 with no replica on the victim, and every
  // committed byte intact.
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  for (BlockId id : AllBlocks(cluster.get())) {
    const BlockRecord* record = cluster->master()->block_manager().Find(id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->locations.size(), 3u);
    for (MediumId m : record->locations) {
      EXPECT_NE(WorkerOfMedium(cluster.get(), m), victim);
    }
  }
  EXPECT_EQ(*fs.ReadFile("/f"), content);
}

// ---------------------------------------------------------------------------
// Lockstep / double-queue regression: an expired in-flight copy must not
// be re-queued onto the same still-cooling target, and dispatch after
// expiry must re-place rather than blindly re-issue.

TEST(RepairExpiryTest, ExpiredCopyMovesOffCooledTargetAndNeverDoubleQueues) {
  auto cluster = std::move(Cluster::Create(RepairSpec())).value();
  FaultRegistry faults(5);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  std::string content(256 * 1024, 'e');
  ASSERT_TRUE(fs.WriteFile("/f", content, options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  BlockId block = (*located)[0].block.id;
  cluster->StopWorker((*located)[0].locations[0].worker);

  // Every copy silently fails at its target: delivered, acked, never
  // committed — the storm scenario the flat re-issue mishandled.
  faults.Arm({.site = Site::kCopyStorm});
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  auto inflight = cluster->master()->InflightCopiesForTest();
  ASSERT_EQ(inflight.size(), 1u);
  const MediumId first_target = inflight[0].second;
  ExpectNoDuplicateQueuedCopies(cluster.get());
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_GE(faults.hits(Site::kCopyStorm), 1);

  // Re-running the monitor while the copy is within its deadline must
  // not double-dispatch (idempotence under the in-flight reservation).
  EXPECT_EQ(cluster->master()->RunReplicationMonitor(), 0);
  EXPECT_EQ(cluster->master()->InflightCopiesForTest().size(), 1u);

  // Past the full timeout the jittered deadline has provably expired.
  // The retry must land on a different target: the expired one is still
  // cooling down (the copy might yet materialize there).
  AdvanceSim(cluster.get(),
             61.0);  // replication_timeout_micros = 60 s
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 1);
  inflight = cluster->master()->InflightCopiesForTest();
  ASSERT_EQ(inflight.size(), 1u);
  EXPECT_NE(inflight[0].second, first_target);
  ExpectNoDuplicateQueuedCopies(cluster.get());

  RepairStats stats = cluster->master()->repair_stats();
  EXPECT_GE(stats.expirations, 1);
  EXPECT_GE(stats.retries, 1);

  // The storm lifts; the escalated retry completes and the block heals.
  faults.ClearAll();
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  const BlockRecord* record = cluster->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 3u);
  EXPECT_GE(cluster->master()->repair_stats().copies_completed, 1);
  EXPECT_EQ(*fs.ReadFile("/f"), content);
}

TEST(RepairExpiryTest, PersistentStormBacksOffButNeverSilentlyDrops) {
  ClusterSpec spec = RepairSpec();
  spec.master.repair.retry_budget = 2;
  auto cluster = std::move(Cluster::Create(spec)).value();
  FaultRegistry faults(7);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  ASSERT_TRUE(fs.WriteFile("/f", std::string(128 * 1024, 'p'), options).ok());

  auto located = fs.GetFileBlockLocations("/f", 0, 1);
  BlockId block = (*located)[0].block.id;
  cluster->StopWorker((*located)[0].locations[0].worker);
  faults.Arm({.site = Site::kCopyStorm});

  // Let the storm grind through several expiry cycles. The quiescence
  // loop advances virtual time across both jittered deadlines and
  // exponential backoff windows, so a bounded number of rounds covers
  // many attempts.
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(12).ok());
  RepairStats stats = cluster->master()->repair_stats();
  EXPECT_GE(stats.expirations, 3);
  // Crossing the retry budget is surfaced as a counter...
  EXPECT_GE(stats.retries_exhausted, 1);
  // ...but the block is never abandoned: there is still a live in-flight
  // attempt or a scheduled future retry.
  EXPECT_TRUE(!cluster->master()->InflightCopiesForTest().empty() ||
              cluster->master()->NextRepairRetryMicros() >= 0);

  faults.ClearAll();
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());
  EXPECT_EQ(cluster->master()->block_manager().Find(block)->locations.size(),
            3u);
}

// ---------------------------------------------------------------------------
// Throttling: per-worker in-flight caps hold at every instant

TEST(RepairThrottleTest, PerWorkerInflightCapIsNeverExceeded) {
  ClusterSpec spec = RepairSpec();
  spec.master.repair.max_inflight_per_worker = 1;
  auto cluster = std::move(Cluster::Create(spec)).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = 128 * 1024;
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 8; ++i) {
    std::string path = "/cap/f" + std::to_string(i);
    std::string content(128 * 1024, static_cast<char>('a' + i));
    ASSERT_TRUE(fs.WriteFile(path, content, options).ok());
    expected[path] = content;
  }

  cluster->StopWorker(cluster->worker_ids()[0]);
  int deficits = 0;
  for (BlockId id : AllBlocks(cluster.get())) {
    const BlockRecord* record = cluster->master()->block_manager().Find(id);
    size_t live = 0;
    for (MediumId m : record->locations) {
      if (cluster->master()->cluster_state().MediumLive(m)) ++live;
    }
    if (live < 3) ++deficits;
  }
  ASSERT_GE(deficits, 2) << "seeded placement left nothing to repair";

  for (int round = 0; round < 50; ++round) {
    int queued = cluster->master()->RunReplicationMonitor();
    for (WorkerId id : cluster->worker_ids()) {
      EXPECT_LE(cluster->master()->RepairInflightForWorker(id), 1);
    }
    ExpectNoDuplicateQueuedCopies(cluster.get());
    auto executed = cluster->PumpHeartbeats();
    ASSERT_TRUE(executed.ok());
    if (queued == 0 && *executed == 0) break;
  }

  RepairStats stats = cluster->master()->repair_stats();
  EXPECT_LE(stats.peak_worker_inflight, 1);
  EXPECT_GE(stats.re_replications, deficits);
  for (const auto& [path, content] : expected) {
    EXPECT_EQ(*fs.ReadFile(path), content) << path;
  }
  for (BlockId id : AllBlocks(cluster.get())) {
    EXPECT_EQ(cluster->master()->block_manager().Find(id)->locations.size(),
              3u);
  }
}

// ---------------------------------------------------------------------------
// Migration shares the repair budget (no unbudgeted byte movement)

TEST(RepairMigrationTest, RequestMigrationDispatchesThroughScheduler) {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 3;
  MediumSpec memory{kMemoryTier, MediaType::kMemory, 8 * kMiB,
                    FromMBps(1900), FromMBps(3200)};
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {memory, hdd};
  auto cluster = std::move(Cluster::Create(spec)).value();
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
  CreateOptions options;
  options.block_size = kMiB;
  options.rep_vector = ReplicationVector::Of(0, 0, 2);
  ASSERT_TRUE(fs.WriteFile("/hot", std::string(kMiB, 'h'), options).ok());

  // Promote one replica into memory — the tiering engine's move, issued
  // through the budgeted path.
  ASSERT_TRUE(cluster->master()
                  ->RequestMigration("/hot", ReplicationVector::Of(1, 0, 1))
                  .ok());
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(50).ok());

  RepairStats stats = cluster->master()->repair_stats();
  EXPECT_GE(stats.migrations, 1);
  auto status = fs.GetFileStatus("/hot");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rep_vector.Get(kMemoryTier), 1);
  EXPECT_EQ(*fs.ReadFile("/hot"), std::string(kMiB, 'h'));
}

// ---------------------------------------------------------------------------
// Mass-failure chaos: a whole rack (one third of the cluster) crashes at
// once. Placement's rack-spread rule guarantees every block keeps at
// least one live replica, and the repair plane must converge back to
// full RF under tight per-worker caps without ever exceeding them.

void RunMassFailure(uint64_t seed) {
  ClusterSpec spec = RepairSpec(/*num_racks=*/3, /*workers_per_rack=*/3);
  spec.master.seed = seed;
  spec.master.repair.max_inflight_per_worker = 2;
  auto cluster = std::move(Cluster::Create(spec)).value();
  FaultRegistry faults(seed);
  cluster->InstallFaultRegistry(&faults);
  FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));

  std::map<std::string, std::string> expected;
  CreateOptions options;
  options.block_size = 128 * 1024;
  for (int i = 0; i < 6; ++i) {
    std::string path = "/mass/f" + std::to_string(i);
    std::string content(2 * 128 * 1024,
                        static_cast<char>('a' + (i + seed) % 26));
    ASSERT_TRUE(fs.WriteFile(path, content, options).ok());
    expected[path] = content;
  }

  // The rack dies: every worker whose location says "rack<r>" crashes
  // silently, a correlated mass failure of ~33% of the cluster.
  const std::string doomed_rack = "rack" + std::to_string(seed % 3);
  std::vector<WorkerId> crashed;
  for (WorkerId id : cluster->worker_ids()) {
    const WorkerInfo* w = cluster->master()->cluster_state().FindWorker(id);
    ASSERT_NE(w, nullptr);
    if (w->location.rack() == doomed_rack) {
      cluster->CrashWorkerSilently(id);
      crashed.push_back(id);
    }
  }
  ASSERT_EQ(crashed.size(), 3u);

  // The failure is only detected after the worker timeout: survivors
  // keep heartbeating, the doomed rack stays silent.
  AdvanceSim(cluster.get(), 31.0);
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  EXPECT_EQ(cluster->master()->CheckWorkerLiveness().size(), 3u);

  // Repair storm under tight caps, checked at every round.
  int rounds = 0;
  for (; rounds < 100; ++rounds) {
    int queued = cluster->master()->RunReplicationMonitor();
    for (WorkerId id : cluster->worker_ids()) {
      ASSERT_LE(cluster->master()->RepairInflightForWorker(id), 2);
    }
    ExpectNoDuplicateQueuedCopies(cluster.get());
    auto executed = cluster->PumpHeartbeats();
    ASSERT_TRUE(executed.ok());
    if (queued == 0 && *executed == 0) break;
  }
  ASSERT_LT(rounds, 100) << "no convergence";

  // Full RF on live workers, caps held, zero acked-data loss.
  RepairStats stats = cluster->master()->repair_stats();
  EXPECT_LE(stats.peak_worker_inflight, 2);
  EXPECT_GE(stats.re_replications, 1);
  std::set<WorkerId> dead(crashed.begin(), crashed.end());
  for (BlockId id : AllBlocks(cluster.get())) {
    const BlockRecord* record = cluster->master()->block_manager().Find(id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->locations.size(), 3u);
    for (MediumId m : record->locations) {
      EXPECT_EQ(dead.count(WorkerOfMedium(cluster.get(), m)), 0u);
    }
  }
  for (const auto& [path, content] : expected) {
    auto data = fs.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, content) << path;
  }

  // Epilogue: decommission a survivor mid-storm-recovery and crash it
  // mid-drain; its queued drain work must re-target cleanly.
  WorkerId survivor = kInvalidWorker;
  for (WorkerId id : cluster->worker_ids()) {
    if (dead.count(id) == 0) {
      survivor = id;
      break;
    }
  }
  ASSERT_NE(survivor, kInvalidWorker);
  ASSERT_TRUE(cluster->master()->StartDecommission(survivor).ok());
  ASSERT_GE(cluster->master()->RunReplicationMonitor(), 0);
  faults.Arm({.site = Site::kDecommissionCrash, .worker = survivor,
              .max_hits = 1});
  ASSERT_TRUE(cluster->PumpHeartbeats().ok());
  ASSERT_TRUE(cluster->RunReplicationToQuiescence(60).ok());
  for (const auto& [path, content] : expected) {
    auto data = fs.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, content) << path;
  }
}

TEST(RepairChaosTest, MassFailureSeed1) { RunMassFailure(1); }
TEST(RepairChaosTest, MassFailureSeed2) { RunMassFailure(2); }
TEST(RepairChaosTest, MassFailureSeed3) { RunMassFailure(3); }

}  // namespace
}  // namespace octo
