// Tests of the timed workload layer: DFSIO through the flow simulator,
// command pumping, and physical sanity of the resulting throughputs.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"
#include "workload/dfsio.h"
#include "workload/slive.h"
#include "workload/transfer_engine.h"

namespace octo {
namespace {

using workload::Dfsio;
using workload::DfsioOptions;
using workload::DfsioResult;
using workload::TransferEngine;

std::unique_ptr<Cluster> MakePaperCluster() {
  auto cluster = Cluster::Create(PaperClusterSpec());
  OCTO_CHECK(cluster.ok()) << cluster.status().ToString();
  return std::move(cluster).value();
}

TEST(TransferEngineTest, SingleFileAllHddPipelineBoundByHddRate) {
  auto cluster = MakePaperCluster();
  TransferEngine engine(cluster.get());
  DfsioOptions options;
  options.parallelism = 1;
  options.total_bytes = 1 * kGiB;
  options.rep_vector = ReplicationVector::Of(0, 0, 3);
  Dfsio dfsio(cluster.get(), &engine);
  auto result = dfsio.RunWrite(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // A solo 3-replica HDD pipeline runs at the HDD write rate (126.3 MB/s):
  // aggregate throughput must be close to it.
  double aggregate_mbps =
      ToMBps(result->total_bytes / result->elapsed_seconds);
  EXPECT_NEAR(aggregate_mbps, 126.3, 10.0);
}

TEST(TransferEngineTest, MemoryWritesFasterThanHdd) {
  auto cluster = MakePaperCluster();
  TransferEngine engine(cluster.get());
  Dfsio dfsio(cluster.get(), &engine);

  DfsioOptions mem;
  mem.parallelism = 3;
  mem.total_bytes = 2 * kGiB;
  mem.rep_vector = ReplicationVector::Of(3, 0, 0);
  mem.dir = "/dfsio-mem";
  auto mem_result = dfsio.RunWrite(mem);
  ASSERT_TRUE(mem_result.ok()) << mem_result.status().ToString();

  DfsioOptions hdd = mem;
  hdd.rep_vector = ReplicationVector::Of(0, 0, 3);
  hdd.dir = "/dfsio-hdd";
  auto hdd_result = dfsio.RunWrite(hdd);
  ASSERT_TRUE(hdd_result.ok());

  EXPECT_GT(hdd_result->elapsed_seconds, mem_result->elapsed_seconds * 2);
}

TEST(TransferEngineTest, ReadsPreferMemoryReplica) {
  auto cluster = MakePaperCluster();
  TransferEngine engine(cluster.get());
  Dfsio dfsio(cluster.get(), &engine);
  DfsioOptions options;
  options.parallelism = 3;
  options.total_bytes = 1 * kGiB;
  options.rep_vector = ReplicationVector::Of(1, 0, 2);
  ASSERT_TRUE(dfsio.RunWrite(options).ok());
  auto read = dfsio.RunRead(options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // Every block has a memory replica; the tier-aware retrieval policy
  // should source (nearly) all reads from the Memory tier.
  int memory_reads = 0;
  for (const workload::IoEvent& event : read->events) {
    const MediumInfo* info =
        cluster->master()->cluster_state().FindMedium(event.media[0]);
    ASSERT_NE(info, nullptr);
    if (info->tier == kMemoryTier) ++memory_reads;
  }
  EXPECT_GT(memory_reads, static_cast<int>(read->events.size()) * 8 / 10);
}

TEST(TransferEngineTest, WriteAccountingMatchesMasterState) {
  auto cluster = MakePaperCluster();
  TransferEngine engine(cluster.get());
  Dfsio dfsio(cluster.get(), &engine);
  DfsioOptions options;
  options.parallelism = 9;
  options.total_bytes = 4 * kGiB;
  options.rep_vector = ReplicationVector::OfTotal(3);
  auto result = dfsio.RunWrite(options);
  ASSERT_TRUE(result.ok());

  // Master-side remaining space decreased by exactly 3 x data volume.
  int64_t used = 0;
  for (const auto& [id, m] : cluster->master()->cluster_state().media()) {
    used += m.capacity_bytes - m.remaining_bytes;
  }
  EXPECT_EQ(used, 3 * result->total_bytes);

  // Worker heartbeats agree with the master's view (virtual accounting).
  for (WorkerId id : cluster->worker_ids()) {
    for (const MediumStats& stats :
         cluster->worker(id)->BuildHeartbeat().media) {
      const MediumInfo* info =
          cluster->master()->cluster_state().FindMedium(stats.medium);
      ASSERT_NE(info, nullptr);
      EXPECT_EQ(stats.remaining_bytes, info->remaining_bytes)
          << "medium " << stats.medium;
    }
  }
}

TEST(TransferEngineTest, SetReplicationMovesReplicaTimed) {
  auto cluster = MakePaperCluster();
  TransferEngine engine(cluster.get());
  NetworkLocation client = cluster->worker(0)->location();
  bool done = false;
  engine.WriteFileAsync("/move-me", 256 * kMiB, 128 * kMiB,
                        ReplicationVector::Of(0, 0, 3), client,
                        [&done](Status st) {
                          ASSERT_TRUE(st.ok()) << st.ToString();
                          done = true;
                        });
  cluster->simulation()->RunUntilIdle();
  ASSERT_TRUE(done);

  UserContext ctx;
  ASSERT_TRUE(cluster->master()
                  ->SetReplication("/move-me", ReplicationVector::Of(1, 0, 2),
                                   ctx)
                  .ok());
  for (int round = 0; round < 4; ++round) {
    auto started = engine.PumpCommandsTimed();
    ASSERT_TRUE(started.ok());
    cluster->simulation()->RunUntilIdle();
    if (*started == 0) break;
  }
  // Both blocks now have exactly 1 memory + 2 HDD replicas.
  auto located = cluster->master()->GetBlockLocations("/move-me", client);
  ASSERT_TRUE(located.ok());
  ASSERT_EQ(located->size(), 2u);
  for (const LocatedBlock& lb : *located) {
    std::multiset<TierId> tiers;
    for (const PlacedReplica& r : lb.locations) tiers.insert(r.tier);
    EXPECT_EQ(tiers,
              (std::multiset<TierId>{kMemoryTier, kHddTier, kHddTier}));
  }
}

TEST(SliveTest, AllOperationTypesComplete) {
  auto cluster = MakePaperCluster();
  workload::SliveOptions options;
  options.ops_per_type = 200;
  auto result = workload::RunSlive(cluster->master(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->ops_per_second.size(), 6u);
  for (const auto& [op, rate] : result->ops_per_second) {
    EXPECT_GT(rate, 0) << op;
  }
}

}  // namespace
}  // namespace octo
