// Tests for the execution engines: the locality-aware slot scheduler, the
// MapReduce- and Spark-style engines, HiBench workload runners, and the
// Pegasus driver with its two optimizations.

#include <gtest/gtest.h>

#include <set>

#include "bench/bench_util.h"
#include "exec/hibench.h"
#include "exec/mapreduce_engine.h"
#include "exec/pegasus.h"
#include "exec/slot_scheduler.h"
#include "exec/spark_engine.h"
#include "workload/transfer_engine.h"

namespace octo {
namespace {

using bench::FsMode;
using bench::MakeBenchCluster;
using exec::SchedulableTask;
using exec::SlotScheduler;
using workload::TransferEngine;

// ---------------------------------------------------------------------------
// SlotScheduler

TEST(SlotSchedulerTest, RunsEveryTaskExactlyOnce) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  SlotScheduler scheduler(cluster.get(), /*slots_per_node=*/2);
  std::vector<SchedulableTask> tasks(50);
  for (int i = 0; i < 50; ++i) tasks[i].id = i;
  std::set<int> executed;
  bool all_done = false;
  scheduler.Run(
      tasks,
      [&](int id, WorkerId, bool, std::function<void()> done) {
        EXPECT_TRUE(executed.insert(id).second) << "task ran twice";
        cluster->simulation()->Schedule(0.1, done);
      },
      [&] { all_done = true; });
  cluster->simulation()->RunUntilIdle();
  EXPECT_TRUE(all_done);
  EXPECT_EQ(executed.size(), 50u);
}

TEST(SlotSchedulerTest, RespectsSlotLimit) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  const int slots = 2;
  const int nodes = static_cast<int>(cluster->worker_ids().size());
  SlotScheduler scheduler(cluster.get(), slots);
  std::vector<SchedulableTask> tasks(100);
  for (int i = 0; i < 100; ++i) tasks[i].id = i;
  int running = 0, peak = 0;
  scheduler.Run(
      tasks,
      [&](int, WorkerId, bool, std::function<void()> done) {
        peak = std::max(peak, ++running);
        cluster->simulation()->Schedule(0.1, [&running, done] {
          --running;
          done();
        });
      },
      [] {});
  cluster->simulation()->RunUntilIdle();
  EXPECT_LE(peak, slots * nodes);
  EXPECT_EQ(peak, slots * nodes);  // full utilization with 100 tasks
}

TEST(SlotSchedulerTest, PrefersLocalPlacement) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  SlotScheduler scheduler(cluster.get(), 1);
  // Every task prefers worker 0..8 round-robin; with 9 nodes x 1 slot and
  // 9 tasks, a perfect matching exists.
  std::vector<SchedulableTask> tasks(9);
  for (int i = 0; i < 9; ++i) {
    tasks[i].id = i;
    tasks[i].preferred_workers = {cluster->worker_ids()[i]};
  }
  int local = 0;
  scheduler.Run(
      tasks,
      [&](int, WorkerId, bool, std::function<void()> done) {
        cluster->simulation()->Schedule(0.01, done);
      },
      [] {}, &local);
  cluster->simulation()->RunUntilIdle();
  EXPECT_EQ(local, 9);
}

TEST(SlotSchedulerTest, EmptyTaskListCompletesImmediately) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  SlotScheduler scheduler(cluster.get(), 1);
  bool done = false;
  scheduler.Run({}, [](int, WorkerId, bool, std::function<void()>) {},
                [&] { done = true; });
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// MapReduce engine

TEST(MapReduceEngineTest, JobRunsAndReportsStats) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  TransferEngine transfers(cluster.get());
  exec::MapReduceEngine engine(&transfers);
  auto input = exec::EnsureInput(&transfers, "/in", 2 * kGiB);
  ASSERT_TRUE(input.ok());

  exec::MapReduceJobSpec spec;
  spec.name = "test-job";
  spec.input_paths = *input;
  spec.output_path = "/out";
  spec.shuffle_ratio = 0.5;
  spec.output_ratio = 0.25;
  auto stats = engine.RunJob(spec);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->elapsed_seconds, 0);
  EXPECT_EQ(stats->input_bytes, 2 * kGiB / 9 * 9);
  EXPECT_EQ(stats->num_map_tasks, 18);  // 2 GiB / 128 MiB blocks (9 files)
  EXPECT_EQ(stats->num_reduce_tasks, 9);
  EXPECT_GT(stats->LocalityFraction(), 0.5);
  // The output landed in the FS.
  auto parts = exec::ListFiles(cluster->master(), "/out");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 9u);
}

TEST(MapReduceEngineTest, MissingInputFails) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  TransferEngine transfers(cluster.get());
  exec::MapReduceEngine engine(&transfers);
  exec::MapReduceJobSpec spec;
  spec.name = "no-input";
  spec.input_paths = {"/does/not/exist"};
  spec.output_path = "/out";
  EXPECT_FALSE(engine.RunJob(spec).ok());
}

TEST(MapReduceEngineTest, OctopusBeatsHdfsOnSameJob) {
  auto run = [](FsMode mode) {
    auto cluster = MakeBenchCluster(mode, /*seed=*/77);
    TransferEngine transfers(cluster.get());
    exec::MapReduceEngine engine(&transfers);
    auto input = exec::EnsureInput(&transfers, "/in", 2 * kGiB);
    EXPECT_TRUE(input.ok());
    exec::MapReduceJobSpec spec;
    spec.name = "compare";
    spec.input_paths = *input;
    spec.output_path = "/out";
    spec.shuffle_ratio = 0.3;
    spec.output_ratio = 0.3;
    spec.map_cpu_sec_per_mb = 0.002;
    spec.reduce_cpu_sec_per_mb = 0.002;
    auto stats = engine.RunJob(spec);
    EXPECT_TRUE(stats.ok());
    return stats->elapsed_seconds;
  };
  double hdfs = run(FsMode::kHdfs);
  double octo = run(FsMode::kOctopusMoop);
  EXPECT_LT(octo, hdfs);
}

// ---------------------------------------------------------------------------
// Spark engine

TEST(SparkEngineTest, CacheAbsorbsRepeatReads) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  TransferEngine transfers(cluster.get());
  exec::SparkEngine engine(&transfers);
  auto input = exec::EnsureInput(&transfers, "/in", 2 * kGiB);
  ASSERT_TRUE(input.ok());

  exec::SparkJobSpec cached;
  cached.name = "iterative";
  cached.input_paths = *input;
  cached.output_path = "/out-cached";
  cached.num_iterations = 4;
  cached.cache_input = true;
  auto with_cache = engine.RunJob(cached);
  ASSERT_TRUE(with_cache.ok()) << with_cache.status().ToString();
  EXPECT_GT(with_cache->cache_read_bytes, 0);

  exec::SparkJobSpec uncached = cached;
  uncached.name = "iterative-nocache";
  uncached.output_path = "/out-uncached";
  uncached.cache_input = false;
  auto without_cache = engine.RunJob(uncached);
  ASSERT_TRUE(without_cache.ok());
  EXPECT_EQ(without_cache->cache_read_bytes, 0);
  EXPECT_LT(with_cache->elapsed_seconds, without_cache->elapsed_seconds);
}

TEST(SparkEngineTest, CacheCapacityBoundsWhatIsCached) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  TransferEngine transfers(cluster.get());
  exec::SparkEngine engine(&transfers);
  auto input = exec::EnsureInput(&transfers, "/in", 2 * kGiB);
  ASSERT_TRUE(input.ok());
  exec::SparkJobSpec spec;
  spec.name = "tiny-cache";
  spec.input_paths = *input;
  spec.output_path = "/out";
  spec.num_iterations = 2;
  spec.cache_bytes_per_node = 1;  // nothing fits
  auto stats = engine.RunJob(spec);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cache_read_bytes, 0);
}

// ---------------------------------------------------------------------------
// HiBench & Pegasus

TEST(HibenchTest, SuiteHasNineWorkloadsInThreeCategories) {
  auto suite = exec::HibenchSuite();
  ASSERT_EQ(suite.size(), 9u);
  int micro = 0, olap = 0, ml = 0;
  for (const auto& w : suite) {
    switch (w.category) {
      case exec::HibenchCategory::kMicro: ++micro; break;
      case exec::HibenchCategory::kOlap: ++olap; break;
      case exec::HibenchCategory::kMachineLearning: ++ml; break;
    }
  }
  EXPECT_EQ(micro, 3);
  EXPECT_EQ(olap, 3);
  EXPECT_EQ(ml, 3);
}

TEST(HibenchTest, WorkloadRunsOnBothEngines) {
  auto cluster = MakeBenchCluster(FsMode::kOctopusMoop);
  TransferEngine transfers(cluster.get());
  exec::MapReduceEngine mr(&transfers);
  exec::SparkEngine spark(&transfers);
  exec::HibenchWorkload sort = exec::HibenchSuite()[0];
  sort.input_bytes = kGiB;  // keep the test fast
  auto mr_stats =
      exec::RunHibenchMapReduce(&mr, &transfers, sort, "/in", "/work-mr");
  ASSERT_TRUE(mr_stats.ok()) << mr_stats.status().ToString();
  EXPECT_GT(mr_stats->elapsed_seconds, 0);
  auto spark_stats =
      exec::RunHibenchSpark(&spark, &transfers, sort, "/in", "/work-sp");
  ASSERT_TRUE(spark_stats.ok()) << spark_stats.status().ToString();
  EXPECT_GT(spark_stats->elapsed_seconds, 0);
}

TEST(PegasusTest, InMemoryIntermediatesImproveIntermediateHeavyWorkload) {
  // The prefetch optimization's few-percent gain is too small to assert on
  // a downsized test graph; the in-memory intermediate optimization on the
  // intermediate-heavy HADI workload is the robust effect (paper: +7-16%,
  // largest for HADI).
  auto run = [](const exec::PegasusOptions& options) {
    auto cluster = MakeBenchCluster(FsMode::kOctopusDefault, /*seed=*/5);
    TransferEngine transfers(cluster.get());
    exec::MapReduceEngine engine(&transfers);
    exec::PegasusWorkload workload = exec::PegasusSuite()[2];  // HADI
    auto stats = exec::RunPegasus(&engine, &transfers, workload, options,
                                  "/graph", kGiB, "/pegasus");
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return stats->elapsed_seconds;
  };
  double baseline = run({false, false});
  double optimized = run({false, true});
  EXPECT_LT(optimized, baseline * 0.95);
}

TEST(PegasusTest, SuiteHasFourWorkloadsHadiLargestIntermediates) {
  auto suite = exec::PegasusSuite();
  ASSERT_EQ(suite.size(), 4u);
  double max_ratio = 0;
  std::string max_name;
  for (const auto& w : suite) {
    if (w.intermediate_ratio > max_ratio) {
      max_ratio = w.intermediate_ratio;
      max_name = w.name;
    }
  }
  EXPECT_EQ(max_name, "HADI");
}

}  // namespace
}  // namespace octo
