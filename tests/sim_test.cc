// Unit tests of the flow-level discrete-event simulator: timing, max-min
// fair sharing, rate caps, event ordering, and the medium profiler.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"
#include "storage/throughput_profiler.h"

namespace octo {
namespace {

using sim::FlowId;
using sim::ResourceId;
using sim::Simulation;

TEST(SimulationTest, SingleFlowTakesBytesOverCapacity) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);  // 100 B/s
  double done_at = -1;
  sim.StartFlow(500.0, {r}, [&] { done_at = sim.now(); });
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(SimulationTest, TwoFlowsShareOneResourceEqually) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  double t1 = -1, t2 = -1;
  sim.StartFlow(100.0, {r}, [&] { t1 = sim.now(); });
  sim.StartFlow(100.0, {r}, [&] { t2 = sim.now(); });
  sim.RunUntilIdle();
  // Both at 50 B/s -> both finish at t=2.
  EXPECT_DOUBLE_EQ(t1, 2.0);
  EXPECT_DOUBLE_EQ(t2, 2.0);
}

TEST(SimulationTest, RatesReallocateWhenAFlowFinishes) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  double t_small = -1, t_big = -1;
  sim.StartFlow(50.0, {r}, [&] { t_small = sim.now(); });
  sim.StartFlow(150.0, {r}, [&] { t_big = sim.now(); });
  sim.RunUntilIdle();
  // Phase 1: both at 50 B/s; small done at t=1 (big has 100 left).
  // Phase 2: big at 100 B/s; done at t=2.
  EXPECT_DOUBLE_EQ(t_small, 1.0);
  EXPECT_DOUBLE_EQ(t_big, 2.0);
}

TEST(SimulationTest, FlowBoundByTightestResource) {
  Simulation sim;
  ResourceId fast = sim.AddResource("net", 1000.0);
  ResourceId slow = sim.AddResource("disk", 10.0);
  double done_at = -1;
  sim.StartFlow(100.0, {fast, slow}, [&] { done_at = sim.now(); });
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST(SimulationTest, MaxMinUnusedShareGoesToOtherFlows) {
  // Flow A crosses r1 only; flow B crosses r1 and r2 (r2 tight at 10).
  // B is limited to 10, so A gets the remaining 90 of r1.
  Simulation sim;
  ResourceId r1 = sim.AddResource("r1", 100.0);
  ResourceId r2 = sim.AddResource("r2", 10.0);
  sim.StartFlow(1e9, {r1});
  FlowId b = sim.StartFlow(1e9, {r1, r2});
  // Inspect instantaneous rates via FlowRate.
  EXPECT_DOUBLE_EQ(sim.FlowRate(b), 10.0);
  // The other flow should be at ~90.
  double total = 0;
  for (sim::FlowId id = 0; id < 2; ++id) total += sim.FlowRate(id);
  EXPECT_DOUBLE_EQ(total, 100.0);
}


TEST(SimulationTest, RateCapLimitsFlow) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 1000.0);
  double done_at = -1;
  sim.StartFlow(100.0, {r}, [&] { done_at = sim.now(); },
                /*rate_cap_bps=*/20.0);
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(SimulationTest, CapReleasesShareToUncappedFlow) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  FlowId capped = sim.StartFlow(1e9, {r}, nullptr, 10.0);
  FlowId open = sim.StartFlow(1e9, {r});
  EXPECT_DOUBLE_EQ(sim.FlowRate(capped), 10.0);
  EXPECT_DOUBLE_EQ(sim.FlowRate(open), 90.0);
}

TEST(SimulationTest, CapWithoutResourcesStillTakesTime) {
  Simulation sim;
  double done_at = -1;
  sim.StartFlow(100.0, {}, [&] { done_at = sim.now(); }, 25.0);
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 4.0);
}

TEST(SimulationTest, ZeroByteFlowCompletesImmediately) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  bool done = false;
  sim.StartFlow(0.0, {r}, [&] { done = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SimulationTest, CancelFlowNeverFiresCallback) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  bool fired = false;
  FlowId id = sim.StartFlow(100.0, {r}, [&] { fired = true; });
  sim.CancelFlow(id);
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.FlowRate(id), 0.0);
}

TEST(SimulationTest, ScheduledEventsRunInTimeThenFifoOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(1.0, [&] { order.push_back(2); });  // same time, later seq
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimulationTest, EventsCanScheduleMoreWork) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  double final_time = -1;
  sim.Schedule(1.0, [&] {
    sim.StartFlow(100.0, {r}, [&] { final_time = sim.now(); });
  });
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(final_time, 2.0);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  bool done = false;
  sim.StartFlow(1000.0, {r}, [&] { done = true; });
  sim.RunUntil(5.0);
  EXPECT_FALSE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(SimulationTest, ResourceAccountingTracksBytes) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  sim.StartFlow(300.0, {r});
  EXPECT_EQ(sim.ActiveFlows(r), 1);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.ActiveFlows(r), 0);
  EXPECT_DOUBLE_EQ(sim.ResourceBytesTransferred(r), 300.0);
  EXPECT_DOUBLE_EQ(sim.ResourceCapacity(r), 100.0);
  EXPECT_EQ(sim.ResourceName(r), "disk");
}

TEST(SimulationTest, ClockAdapterTracksVirtualTime) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  sim.StartFlow(250.0, {r});
  sim.RunUntilIdle();
  EXPECT_EQ(sim.clock()->NowMicros(), 2500000);
}

TEST(SimulationTest, DuplicateResourcesInFlowCollapse) {
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  double done_at = -1;
  sim.StartFlow(100.0, {r, r, r}, [&] { done_at = sim.now(); });
  EXPECT_EQ(sim.ActiveFlows(r), 1);
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

TEST(ProfilerTest, RecoversDeviceRatesOnIdleSimulator) {
  Simulation sim;
  ResourceId w = sim.AddResource("disk:w", 126.3e6);
  ResourceId r = sim.AddResource("disk:r", 177.1e6);
  ProfiledRates rates = ProfileMedium(&sim, w, r, 64e6);
  EXPECT_NEAR(rates.write_bps, 126.3e6, 1.0);
  EXPECT_NEAR(rates.read_bps, 177.1e6, 1.0);
}

// Parameterized fairness property: N identical flows on one resource all
// finish together at N * bytes / capacity.
class FairnessTest : public ::testing::TestWithParam<int> {};

TEST_P(FairnessTest, EqualFlowsFinishTogether) {
  const int n = GetParam();
  Simulation sim;
  ResourceId r = sim.AddResource("disk", 100.0);
  std::vector<double> finish(n, -1);
  for (int i = 0; i < n; ++i) {
    sim.StartFlow(100.0, {r}, [&finish, i, &sim] { finish[i] = sim.now(); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(finish[i], n * 1.0, 1e-9) << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanout, FairnessTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace octo
