// Unit tests for the four MOOP objective functions and the
// global-criterion score (paper §3.2, Eq. 1-11), checked against
// hand-computed values on small crafted clusters.

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "core/cluster_state.h"
#include "core/objectives.h"

namespace octo {
namespace {

// A crafted 2-rack, 4-worker cluster:
//   w0 (/r1/n1): m0 memory (cap 100, rem 100), m1 hdd (cap 1000, rem 500)
//   w1 (/r1/n2): m2 hdd (cap 1000, rem 1000)
//   w2 (/r2/n1): m3 ssd (cap 400, rem 200)
//   w3 (/r2/n2): m4 hdd (cap 1000, rem 800, 3 connections)
class ObjectivesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add_worker = [&](WorkerId id, const char* rack, const char* node) {
      WorkerInfo w;
      w.id = id;
      w.location = NetworkLocation(rack, node);
      w.net_bps = 1.25e9;
      ASSERT_TRUE(state_.AddWorker(w).ok());
    };
    add_worker(0, "r1", "n1");
    add_worker(1, "r1", "n2");
    add_worker(2, "r2", "n1");
    add_worker(3, "r2", "n2");

    state_.AddTier({kMemoryTier, "Memory", MediaType::kMemory});
    state_.AddTier({kSsdTier, "SSD", MediaType::kSsd});
    state_.AddTier({kHddTier, "HDD", MediaType::kHdd});

    auto add_medium = [&](MediumId id, WorkerId w, TierId tier, MediaType t,
                          int64_t cap, int64_t rem, int conns, double wbps,
                          double rbps) {
      MediumInfo m;
      m.id = id;
      m.worker = w;
      m.location = state_.FindWorker(w)->location;
      m.tier = tier;
      m.type = t;
      m.capacity_bytes = cap;
      m.remaining_bytes = rem;
      m.nr_connections = conns;
      m.write_bps = wbps;
      m.read_bps = rbps;
      ASSERT_TRUE(state_.AddMedium(m).ok());
    };
    add_medium(0, 0, kMemoryTier, MediaType::kMemory, 100, 100, 0,
               FromMBps(1900), FromMBps(3200));
    add_medium(1, 0, kHddTier, MediaType::kHdd, 1000, 500, 0, FromMBps(126),
               FromMBps(177));
    add_medium(2, 1, kHddTier, MediaType::kHdd, 1000, 1000, 0, FromMBps(126),
               FromMBps(177));
    add_medium(3, 2, kSsdTier, MediaType::kSsd, 400, 200, 0, FromMBps(340),
               FromMBps(420));
    add_medium(4, 3, kHddTier, MediaType::kHdd, 1000, 800, 3, FromMBps(126),
               FromMBps(177));
  }

  std::vector<const MediumInfo*> Pick(std::initializer_list<MediumId> ids) {
    std::vector<const MediumInfo*> out;
    for (MediumId id : ids) out.push_back(state_.FindMedium(id));
    return out;
  }

  ClusterState state_;
};

TEST_F(ObjectivesTest, DataBalancingMatchesEq1) {
  Objectives obj(state_, /*block_size=*/100);
  // f_db = sum (Rem - blockSize)/Cap.
  double expected = (500.0 - 100) / 1000 + (1000.0 - 100) / 1000;
  EXPECT_DOUBLE_EQ(obj.DataBalancing(Pick({1, 2})), expected);
}

TEST_F(ObjectivesTest, DataBalancingIdealUsesMaxRemainingFraction) {
  Objectives obj(state_, 100);
  // Max Rem/Cap over all media = m0 memory at 100/100 = 1.0.
  EXPECT_DOUBLE_EQ(obj.Ideal(3)[0], 3.0);
}

TEST_F(ObjectivesTest, LoadBalancingMatchesEq3) {
  Objectives obj(state_, 100);
  // m2 has 0 connections (1/1), m4 has 3 (1/4).
  EXPECT_DOUBLE_EQ(obj.LoadBalancing(Pick({2, 4})), 1.0 + 0.25);
  // Ideal: |m| / (min conns + 1) with min conns = 0.
  EXPECT_DOUBLE_EQ(obj.Ideal(2)[1], 2.0);
}

TEST_F(ObjectivesTest, FaultToleranceMatchesEq5) {
  Objectives obj(state_, 100);
  // {m0,m3,m2}: tiers {mem,ssd,hdd}=3/min(3,3); nodes {w0,w2,w1}=3/min(3,4);
  // racks {r1,r2}=2 -> 1/(|2-2|+1)=1. Total = 1 + 1 + 1 = 3 (the ideal).
  EXPECT_DOUBLE_EQ(obj.FaultTolerance(Pick({0, 3, 2})), 3.0);
  EXPECT_DOUBLE_EQ(obj.Ideal(3)[2], 3.0);

  // {m1,m2}: same tier (1/min(2,3)), different nodes (2/min(2,4)),
  // one rack -> 1/(|1-2|+1) = 0.5.
  EXPECT_DOUBLE_EQ(obj.FaultTolerance(Pick({1, 2})), 0.5 + 1.0 + 0.5);

  // Same node twice: {m0,m1}: 2 tiers, 1 node, 1 rack.
  EXPECT_DOUBLE_EQ(obj.FaultTolerance(Pick({0, 1})), 1.0 + 0.5 + 0.5);
}

TEST_F(ObjectivesTest, ThroughputMaxMatchesEq7) {
  Objectives obj(state_, 100);
  // Tier-average write rates: memory 1900, ssd 340, hdd 126 (MB/s).
  // f_tm for one HDD medium = log(126)/log(1900).
  double expected = std::log(126.0) / std::log(1900.0);
  EXPECT_NEAR(obj.ThroughputMax(Pick({2})), expected, 1e-9);
  // Memory medium scores 1 (it is the fastest tier).
  EXPECT_NEAR(obj.ThroughputMax(Pick({0})), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(obj.Ideal(2)[3], 2.0);
}

TEST_F(ObjectivesTest, ScoreIsDistanceToIdeal) {
  Objectives obj(state_, 100);
  auto chosen = Pick({0, 3, 2});
  ObjectiveVector f = obj.Evaluate(chosen);
  ObjectiveVector z = obj.Ideal(3);
  double expected = 0;
  for (int i = 0; i < 4; ++i) expected += (f[i] - z[i]) * (f[i] - z[i]);
  EXPECT_DOUBLE_EQ(obj.Score(chosen), std::sqrt(expected));
}

TEST_F(ObjectivesTest, SingleObjectiveScoreIsolatesOneComponent) {
  Objectives obj(state_, 100);
  auto chosen = Pick({1, 2});
  EXPECT_DOUBLE_EQ(
      obj.SingleObjectiveScore(Objective::kLoadBalancing, chosen),
      std::abs(obj.LoadBalancing(chosen) - obj.Ideal(2)[1]));
  EXPECT_DOUBLE_EQ(
      obj.SingleObjectiveScore(Objective::kFaultTolerance, chosen),
      std::abs(obj.FaultTolerance(chosen) - 3.0));
}

TEST_F(ObjectivesTest, DiverseSetBeatsColocatedSet) {
  Objectives obj(state_, 100);
  // {m0,m3,m2}: three tiers, three nodes, two racks. {m0,m1,m2}: two of
  // the media share node w0 and all sit in rack r1 — strictly worse fault
  // tolerance and throughput, so it must score further from the ideal.
  EXPECT_LT(obj.Score(Pick({0, 3, 2})), obj.Score(Pick({0, 1, 2})));
}

TEST_F(ObjectivesTest, DeadWorkersExcludedFromAggregates) {
  ASSERT_TRUE(state_.SetWorkerAlive(0, false).ok());
  // Memory medium m0 (on dead w0) no longer defines the maxima.
  Objectives obj(state_, 100);
  // Max remaining fraction now m2's 1000/1000 = 1.0 still; check tier
  // count dropped (memory tier inactive).
  EXPECT_EQ(state_.NumActiveTiers(), 2);
  EXPECT_EQ(state_.NumLiveWorkers(), 3);
}

TEST_F(ObjectivesTest, SingleRackClusterRackTermIsOne) {
  // Build a one-rack state.
  ClusterState solo;
  WorkerInfo w;
  w.id = 0;
  w.location = NetworkLocation("r1", "n1");
  ASSERT_TRUE(solo.AddWorker(w).ok());
  MediumInfo m;
  m.id = 0;
  m.worker = 0;
  m.location = w.location;
  m.tier = kHddTier;
  m.type = MediaType::kHdd;
  m.capacity_bytes = 100;
  m.remaining_bytes = 100;
  m.write_bps = FromMBps(126);
  m.read_bps = FromMBps(177);
  ASSERT_TRUE(solo.AddMedium(m).ok());
  Objectives obj(solo, 10);
  // t=1: rack term is 1 regardless of spread (Eq. 5's conditional).
  std::vector<const MediumInfo*> chosen = {solo.FindMedium(0)};
  EXPECT_DOUBLE_EQ(obj.FaultTolerance(chosen), 1.0 + 1.0 + 1.0);
}

// The incremental accumulator must reproduce the vector-based evaluation
// bit-for-bit (EXPECT_EQ on doubles, no tolerance): the placement solver's
// candidate ranking — and therefore every placement decision — depends on
// exact score equality with the pre-optimization implementation.
TEST_F(ObjectivesTest, AccumulatorMatchesVectorEvaluationBitwise) {
  Objectives obj(state_, 10);
  // Every ordered prefix walk over a few representative pick orders,
  // including duplicates of tier/node/rack along the way.
  const std::vector<std::vector<MediumId>> orders = {
      {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 4, 1}, {1, 2}, {3}, {0, 4, 2, 3},
  };
  for (const auto& order : orders) {
    ScoreAccumulator acc;
    acc.Reset(&obj);
    std::vector<const MediumInfo*> chosen;
    for (MediumId id : order) {
      const MediumInfo* m = state_.FindMedium(id);
      // Score of chosen + candidate, before committing.
      chosen.push_back(m);
      EXPECT_EQ(acc.ScoreWith(*m), obj.Score(chosen)) << "order len "
                                                      << chosen.size();
      for (Objective o : {Objective::kDataBalancing, Objective::kLoadBalancing,
                          Objective::kFaultTolerance,
                          Objective::kThroughputMax}) {
        EXPECT_EQ(acc.SingleObjectiveScoreWith(o, *m),
                  obj.SingleObjectiveScore(o, chosen))
            << static_cast<int>(o) << " at len " << chosen.size();
      }
      acc.Add(*m);
      EXPECT_EQ(acc.Score(), obj.Score(chosen));
      EXPECT_EQ(acc.size(), static_cast<int>(chosen.size()));
    }
  }
}

TEST_F(ObjectivesTest, AccumulatorEmptySetMatchesVector) {
  Objectives obj(state_, 10);
  ScoreAccumulator acc;
  acc.Reset(&obj);
  EXPECT_EQ(acc.Score(), obj.Score({}));  // distance to Ideal(0) = 3.0
}

}  // namespace
}  // namespace octo
