// Tests for the edit log (journal + replay) and fsimage checkpointing,
// including a randomized property: replaying a journal reproduces the
// exact namespace.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/clock.h"
#include "common/random.h"
#include "namespacefs/edit_log.h"
#include "namespacefs/fsimage.h"
#include "namespacefs/lease_manager.h"
#include "namespacefs/namespace_tree.h"

namespace octo {
namespace {

const UserContext kRoot{"root", {}};

// Applies an operation to both a tree and the journal, like the Master.
class JournaledTree {
 public:
  explicit JournaledTree(Clock* clock) : tree_(clock) {}

  void Mkdirs(const std::string& p) {
    ASSERT_TRUE(tree_.Mkdirs(p, kRoot).ok());
    log_.LogMkdirs(p);
  }
  void Create(const std::string& p, const ReplicationVector& rv) {
    ASSERT_TRUE(
        tree_.CreateFile(p, rv, kDefaultBlockSize, false, kRoot).ok());
    log_.LogCreate(p, rv, kDefaultBlockSize, false);
  }
  void AddBlock(const std::string& p, BlockInfo b) {
    ASSERT_TRUE(tree_.AddBlock(p, b).ok());
    log_.LogAddBlock(p, b);
  }
  void Complete(const std::string& p) {
    ASSERT_TRUE(tree_.CompleteFile(p).ok());
    log_.LogComplete(p);
  }
  void Rename(const std::string& a, const std::string& b) {
    ASSERT_TRUE(tree_.Rename(a, b, kRoot).ok());
    log_.LogRename(a, b);
  }
  void Delete(const std::string& p) {
    ASSERT_TRUE(tree_.Delete(p, true, kRoot).ok());
    log_.LogDelete(p, true);
  }
  void SetQuota(const std::string& p, int slot, int64_t v) {
    ASSERT_TRUE(tree_.SetQuota(p, slot, v).ok());
    log_.LogSetQuota(p, slot, v);
  }
  void SetRv(const std::string& p, const ReplicationVector& rv) {
    ASSERT_TRUE(tree_.SetReplicationVector(p, rv, kRoot).ok());
    log_.LogSetReplication(p, rv);
  }

  NamespaceTree& tree() { return tree_; }
  EditLog& log() { return log_; }

 private:
  NamespaceTree tree_;
  EditLog log_;
};

TEST(EditLogTest, ReplayReconstructsNamespace) {
  ManualClock clock;
  JournaledTree jt(&clock);
  jt.Mkdirs("/a/b");
  jt.Create("/a/b/f", ReplicationVector::Of(1, 0, 2));
  jt.AddBlock("/a/b/f", BlockInfo{7, 100});
  jt.AddBlock("/a/b/f", BlockInfo{8, 50});
  jt.Complete("/a/b/f");
  jt.Rename("/a/b/f", "/a/g");
  jt.SetQuota("/a", kTotalSpaceSlot, 10000);
  jt.SetRv("/a/g", ReplicationVector::Of(0, 1, 2));

  NamespaceTree replayed(&clock);
  ASSERT_TRUE(EditLog::Replay(jt.log().entries(), 0, &replayed).ok());
  EXPECT_EQ(FsImage::Serialize(replayed), FsImage::Serialize(jt.tree()));
  auto blocks = replayed.GetBlocks("/a/g");
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->size(), 2u);
  EXPECT_EQ(replayed.GetQuotaUsage("/a")->quota[kTotalSpaceSlot], 10000);
}

TEST(EditLogTest, ReplayFromOffsetSkipsEarlierRecords) {
  ManualClock clock;
  JournaledTree jt(&clock);
  jt.Mkdirs("/early");
  int64_t offset = jt.log().size();
  jt.Mkdirs("/late");

  NamespaceTree replayed(&clock);
  // Pre-seed with the checkpointed part, then replay the tail.
  ASSERT_TRUE(replayed.Mkdirs("/early", kRoot).ok());
  ASSERT_TRUE(EditLog::Replay(jt.log().entries(), offset, &replayed).ok());
  EXPECT_TRUE(replayed.Exists("/late"));
}

TEST(EditLogTest, MalformedRecordReported) {
  ManualClock clock;
  NamespaceTree tree(&clock);
  EXPECT_TRUE(EditLog::Replay({"BOGUS\t/x"}, 0, &tree).IsCorruption());
  EXPECT_TRUE(EditLog::Replay({"MKDIR"}, 0, &tree).IsCorruption());
}

TEST(EditLogTest, FileBackedLogPersists) {
  auto path = std::filesystem::temp_directory_path() / "octo_editlog_test";
  std::filesystem::remove(path);
  {
    auto log = EditLog::Open(path.string());
    ASSERT_TRUE(log.ok());
    (*log)->LogMkdirs("/persisted");
    (*log)->LogRename("/a", "/b");
  }
  {
    auto log = EditLog::Open(path.string());
    ASSERT_TRUE(log.ok());
    ASSERT_EQ((*log)->size(), 2);
    EXPECT_EQ((*log)->entries()[0], "MKDIR\t/persisted");
    ASSERT_TRUE((*log)->Truncate().ok());
  }
  {
    auto log = EditLog::Open(path.string());
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->size(), 0);
  }
  std::filesystem::remove(path);
}

// Property: a random operation sequence replayed from the journal yields a
// byte-identical fsimage.
class JournalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JournalPropertyTest, RandomOpsReplayIdentically) {
  ManualClock clock;
  Random rng(GetParam());
  JournaledTree jt(&clock);
  std::vector<std::string> files;
  std::vector<std::string> dirs = {"/"};
  int name = 0;
  // The clock stays fixed: mtimes are not journaled (replay happens at
  // recovery time), so only a frozen clock allows byte-exact comparison.
  for (int i = 0; i < 300; ++i) {
    int op = static_cast<int>(rng.Uniform(6));
    if (op == 0 || dirs.size() < 3) {  // mkdir
      std::string parent = dirs[rng.Uniform(dirs.size())];
      std::string path = (parent == "/" ? "" : parent) + "/d" +
                         std::to_string(name++);
      jt.Mkdirs(path);
      dirs.push_back(path);
    } else if (op == 1 || files.empty()) {  // create + blocks + complete
      std::string parent = dirs[rng.Uniform(dirs.size())];
      std::string path = (parent == "/" ? "" : parent) + "/f" +
                         std::to_string(name++);
      jt.Create(path, ReplicationVector::OfTotal(
                          static_cast<uint8_t>(1 + rng.Uniform(4))));
      int blocks = static_cast<int>(rng.Uniform(3));
      for (int b = 0; b < blocks; ++b) {
        jt.AddBlock(path, BlockInfo{name * 1000 + b,
                                    static_cast<int64_t>(rng.Uniform(5000))});
      }
      jt.Complete(path);
      files.push_back(path);
    } else if (op == 2) {  // rename a file to a fresh name
      size_t idx = rng.Uniform(files.size());
      std::string target = "/renamed" + std::to_string(name++);
      jt.Rename(files[idx], target);
      files[idx] = target;
    } else if (op == 3) {  // delete a file
      size_t idx = rng.Uniform(files.size());
      jt.Delete(files[idx]);
      files.erase(files.begin() + idx);
    } else if (op == 4) {  // change replication vector
      size_t idx = rng.Uniform(files.size());
      jt.SetRv(files[idx], ReplicationVector::Of(
                               static_cast<uint8_t>(rng.Uniform(2)),
                               static_cast<uint8_t>(rng.Uniform(2)),
                               static_cast<uint8_t>(1 + rng.Uniform(2))));
    } else {  // quota on a random dir
      std::string dir = dirs[rng.Uniform(dirs.size())];
      jt.SetQuota(dir, kTotalSpaceSlot,
                  static_cast<int64_t>(1e15 + rng.Uniform(1000)));
    }
  }
  NamespaceTree replayed(&clock);
  ASSERT_TRUE(EditLog::Replay(jt.log().entries(), 0, &replayed).ok());
  EXPECT_EQ(FsImage::Serialize(replayed), FsImage::Serialize(jt.tree()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// FsImage

TEST(FsImageTest, SerializeDeserializeRoundTrip) {
  ManualClock clock(500);
  NamespaceTree tree(&clock);
  ASSERT_TRUE(tree.Mkdirs("/data/raw", kRoot).ok());
  ASSERT_TRUE(tree.SetQuota("/data", kMemoryTier, 12345).ok());
  ASSERT_TRUE(tree.CreateFile("/data/f", ReplicationVector::Of(1, 1, 1),
                              64 * 1024, false, kRoot)
                  .ok());
  ASSERT_TRUE(tree.AddBlock("/data/f", BlockInfo{9, 4096}).ok());
  ASSERT_TRUE(tree.CompleteFile("/data/f").ok());
  // Leave a second file under construction.
  ASSERT_TRUE(tree.CreateFile("/data/open", ReplicationVector::OfTotal(2),
                              64 * 1024, false, kRoot)
                  .ok());

  std::string image = FsImage::Serialize(tree);
  NamespaceTree loaded(&clock);
  ASSERT_TRUE(FsImage::Deserialize(image, &loaded).ok());
  EXPECT_EQ(FsImage::Serialize(loaded), image);
  EXPECT_EQ(loaded.GetQuotaUsage("/data")->quota[kMemoryTier], 12345);
  EXPECT_TRUE(
      loaded.GetFileStatus("/data/open", kRoot)->under_construction);
  EXPECT_EQ(loaded.GetBlocks("/data/f")->size(), 1u);
}

TEST(FsImageTest, SaveLoadFile) {
  auto path = std::filesystem::temp_directory_path() / "octo_fsimage_test";
  ManualClock clock;
  NamespaceTree tree(&clock);
  ASSERT_TRUE(tree.Mkdirs("/x/y", kRoot).ok());
  ASSERT_TRUE(FsImage::Save(tree, path.string()).ok());
  NamespaceTree loaded(&clock);
  ASSERT_TRUE(FsImage::Load(path.string(), &loaded).ok());
  EXPECT_TRUE(loaded.Exists("/x/y"));
  std::filesystem::remove(path);
}

TEST(FsImageTest, RejectsCorruptImages) {
  ManualClock clock;
  NamespaceTree tree(&clock);
  EXPECT_TRUE(FsImage::Deserialize("garbage", &tree).IsCorruption());
  NamespaceTree tree2(&clock);
  EXPECT_TRUE(FsImage::Deserialize("OCTO_FSIMAGE\t1\nZ\tbad\n", &tree2)
                  .IsCorruption());
}

// ---------------------------------------------------------------------------
// Leases

TEST(LeaseManagerTest, AcquireRenewRelease) {
  ManualClock clock;
  LeaseManager leases(&clock, 1000);
  ASSERT_TRUE(leases.Acquire("/f", "w1").ok());
  EXPECT_TRUE(leases.Acquire("/f", "w2").IsAlreadyExists());
  EXPECT_EQ(*leases.Holder("/f"), "w1");
  EXPECT_TRUE(leases.Renew("/f", "w2").IsPermissionDenied());
  ASSERT_TRUE(leases.Renew("/f", "w1").ok());
  EXPECT_TRUE(leases.Release("/f", "w2").IsPermissionDenied());
  ASSERT_TRUE(leases.Release("/f", "w1").ok());
  EXPECT_FALSE(leases.IsHeld("/f"));
}

TEST(LeaseManagerTest, ExpiryAllowsTakeover) {
  ManualClock clock;
  LeaseManager leases(&clock, 1000);
  ASSERT_TRUE(leases.Acquire("/f", "w1").ok());
  clock.AdvanceMicros(1500);
  EXPECT_FALSE(leases.IsHeld("/f"));
  EXPECT_TRUE(leases.Holder("/f").status().IsNotFound());
  // Another writer can now take the lease.
  EXPECT_TRUE(leases.Acquire("/f", "w2").ok());
}

TEST(LeaseManagerTest, RenewExtendsExpiry) {
  ManualClock clock;
  LeaseManager leases(&clock, 1000);
  ASSERT_TRUE(leases.Acquire("/f", "w1").ok());
  clock.AdvanceMicros(800);
  ASSERT_TRUE(leases.Renew("/f", "w1").ok());
  clock.AdvanceMicros(800);  // 1600 total, but renewed at 800
  EXPECT_TRUE(leases.IsHeld("/f"));
}

TEST(LeaseManagerTest, ReapExpiredReturnsPaths) {
  ManualClock clock;
  LeaseManager leases(&clock, 1000);
  ASSERT_TRUE(leases.Acquire("/a", "w1").ok());
  clock.AdvanceMicros(600);
  ASSERT_TRUE(leases.Acquire("/b", "w2").ok());
  clock.AdvanceMicros(600);  // /a expired (1200 > 1000), /b not (600)
  auto expired = leases.ReapExpired();
  EXPECT_EQ(expired, (std::vector<std::string>{"/a"}));
  EXPECT_EQ(leases.num_leases(), 1);
}

TEST(LeaseManagerTest, ReacquireOwnLeaseRenews) {
  ManualClock clock;
  LeaseManager leases(&clock, 1000);
  ASSERT_TRUE(leases.Acquire("/f", "w1").ok());
  clock.AdvanceMicros(900);
  ASSERT_TRUE(leases.Acquire("/f", "w1").ok());
  clock.AdvanceMicros(900);
  EXPECT_TRUE(leases.IsHeld("/f"));
}

}  // namespace
}  // namespace octo
