// Tests for the background block scrubber (Worker::ScrubBlocks and
// Cluster::RunScrubber): corruption is detected without any client read,
// the bad replica is dropped and repaired, and healthy replicas are
// never disturbed.

#include <gtest/gtest.h>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.num_racks = 2;
  spec.workers_per_rack = 2;
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {hdd, hdd};
  return spec;
}

class ScrubberTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(SmallSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
    CreateOptions options;
    options.block_size = kMiB;
    ASSERT_TRUE(
        fs_->WriteFile("/scrub/f", std::string(512 * 1024, 's'), options)
            .ok());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(ScrubberTest, CleanClusterFindsNothing) {
  auto found = cluster_->RunScrubber();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0);
}

TEST_F(ScrubberTest, DetectsAndRepairsSilentCorruption) {
  auto located = fs_->GetFileBlockLocations("/scrub/f", 0, 512 * 1024);
  ASSERT_TRUE(located.ok());
  const PlacedReplica victim = (*located)[0].locations[0];
  BlockId block = (*located)[0].block.id;
  ASSERT_TRUE(
      cluster_->worker(victim.worker)->CorruptBlock(victim.medium, block)
          .ok());

  // No client ever reads the file; the scrubber finds it.
  auto found = cluster_->RunScrubber();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 1);

  // The bad replica is gone from the map; repair restores replication.
  const BlockRecord* record = cluster_->master()->block_manager().Find(block);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->locations.size(), 2u);
  ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok());
  record = cluster_->master()->block_manager().Find(block);
  EXPECT_EQ(record->locations.size(), 3u);
  // Every registered replica now passes its checksum.
  EXPECT_EQ(*cluster_->RunScrubber(), 0);
  EXPECT_EQ(fs_->ReadFile("/scrub/f")->size(), 512u * 1024);
}

TEST_F(ScrubberTest, WorkerScrubReportsExactCorruptSet) {
  auto located = fs_->GetFileBlockLocations("/scrub/f", 0, 512 * 1024);
  const PlacedReplica victim = (*located)[0].locations[0];
  BlockId block = (*located)[0].block.id;
  Worker* worker = cluster_->worker(victim.worker);
  ASSERT_TRUE(worker->CorruptBlock(victim.medium, block).ok());
  auto corrupt = worker->ScrubBlocks();
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0].first, victim.medium);
  EXPECT_EQ(corrupt[0].second, block);
  // Other workers report clean.
  for (WorkerId id : cluster_->worker_ids()) {
    if (id != victim.worker) {
      EXPECT_TRUE(cluster_->worker(id)->ScrubBlocks().empty());
    }
  }
}

TEST_F(ScrubberTest, StoppedWorkersAreSkipped) {
  auto located = fs_->GetFileBlockLocations("/scrub/f", 0, 512 * 1024);
  const PlacedReplica victim = (*located)[0].locations[0];
  BlockId block = (*located)[0].block.id;
  ASSERT_TRUE(
      cluster_->worker(victim.worker)->CorruptBlock(victim.medium, block)
          .ok());
  cluster_->StopWorker(victim.worker);
  auto found = cluster_->RunScrubber();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0);  // unreachable corruption stays undetected for now
  cluster_->RestartWorker(victim.worker);
  EXPECT_EQ(*cluster_->RunScrubber(), 1);
}

}  // namespace
}  // namespace octo
