// Unit and property tests for ReplicationVector, the 64-bit encoded
// per-tier replica count vector (paper §2.3).

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/replication_vector.h"

namespace octo {
namespace {

TEST(ReplicationVectorTest, DefaultIsEmpty) {
  ReplicationVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.total(), 0);
  EXPECT_EQ(v.Encode(), 0u);
}

TEST(ReplicationVectorTest, OfTotalIsBackwardsCompatibleForm) {
  // The old API's "short replication = 3" becomes U = 3.
  ReplicationVector v = ReplicationVector::OfTotal(3);
  EXPECT_EQ(v.total(), 3);
  EXPECT_EQ(v.unspecified(), 3);
  EXPECT_EQ(v.specified_total(), 0);
}

TEST(ReplicationVectorTest, OfSetsTierSlots) {
  ReplicationVector v = ReplicationVector::Of(1, 0, 2, 0, 1);
  EXPECT_EQ(v.Get(kMemoryTier), 1);
  EXPECT_EQ(v.Get(kSsdTier), 0);
  EXPECT_EQ(v.Get(kHddTier), 2);
  EXPECT_EQ(v.Get(kRemoteTier), 0);
  EXPECT_EQ(v.unspecified(), 1);
  EXPECT_EQ(v.total(), 4);
  EXPECT_EQ(v.specified_total(), 3);
}

TEST(ReplicationVectorTest, PaperExamplesFromSection23) {
  // V = <1,0,2,0,0>: one memory replica, two HDD replicas.
  ReplicationVector v = ReplicationVector::Of(1, 0, 2);
  EXPECT_EQ(v.total(), 3);
  // Move: <1,0,2> -> <1,1,1>. Copy: -> <1,1,2>. Within-tier: -> <1,0,3>.
  EXPECT_EQ(ReplicationVector::Of(1, 1, 1).total(), 3);
  EXPECT_EQ(ReplicationVector::Of(1, 1, 2).total(), 4);
  EXPECT_EQ(ReplicationVector::Of(1, 0, 3).total(), 4);
  // Delete from a tier: -> <0,0,2>.
  EXPECT_EQ(ReplicationVector::Of(0, 0, 2).total(), 2);
}

TEST(ReplicationVectorTest, EncodeIs64Bits) {
  // The paper stresses the vector fits in 64 bits.
  static_assert(sizeof(ReplicationVector().Encode()) == 8);
  ReplicationVector v = ReplicationVector::Of(255, 255, 255, 255, 255);
  EXPECT_EQ(v.Get(kMemoryTier), 255);
  EXPECT_EQ(ReplicationVector::FromEncoded(v.Encode()), v);
}

TEST(ReplicationVectorTest, ToStringShowsSlotsAndU) {
  EXPECT_EQ(ReplicationVector::Of(1, 0, 2).ToString(),
            "<1,0,2,0,0,0,0|U=0>");
  EXPECT_EQ(ReplicationVector::OfTotal(5).ToString(),
            "<0,0,0,0,0,0,0|U=5>");
}

TEST(ReplicationVectorTest, ParseShorthandFourTier) {
  auto v = ReplicationVector::ParseShorthand("1,0,2,0,1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get(kMemoryTier), 1);
  EXPECT_EQ(v->Get(kHddTier), 2);
  EXPECT_EQ(v->unspecified(), 1);
}

TEST(ReplicationVectorTest, ParseShorthandShortForms) {
  auto v = ReplicationVector::ParseShorthand("0,3");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get(kSsdTier), 3);
  EXPECT_EQ(v->unspecified(), 0);
}

TEST(ReplicationVectorTest, ParseShorthandRejectsBadInput) {
  EXPECT_FALSE(ReplicationVector::ParseShorthand("1,x,2").ok());
  EXPECT_FALSE(ReplicationVector::ParseShorthand("1,-1").ok());
  EXPECT_FALSE(ReplicationVector::ParseShorthand("300").ok());
  EXPECT_FALSE(
      ReplicationVector::ParseShorthand("1,2,3,4,5,6,7,8,9").ok());
}

TEST(ReplicationVectorTest, SetAndGetAllSlots) {
  ReplicationVector v;
  for (TierId t = 0; t < 8; ++t) v.Set(t, static_cast<uint8_t>(t + 1));
  for (TierId t = 0; t < 8; ++t) EXPECT_EQ(v.Get(t), t + 1);
  EXPECT_EQ(v.total(), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

// Property: encode/decode round-trips for random vectors.
class ReplicationVectorRoundTrip : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ReplicationVectorRoundTrip, EncodeDecodeIdentity) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    ReplicationVector v;
    for (TierId t = 0; t < 8; ++t) {
      v.Set(t, static_cast<uint8_t>(rng.Uniform(256)));
    }
    ReplicationVector decoded = ReplicationVector::FromEncoded(v.Encode());
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(decoded.Encode(), v.Encode());
    // Totals agree with a direct sum.
    int sum = 0;
    for (TierId t = 0; t < 8; ++t) sum += v.Get(t);
    EXPECT_EQ(v.total(), sum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationVectorRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234567u));

}  // namespace
}  // namespace octo
