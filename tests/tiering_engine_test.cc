// Tests for the automated tiering engine: the closed heat-statistics
// loop (client reads -> worker heartbeats -> Master access stats ->
// Tick), up/down migration across levels, per-level budgets with
// displacement, and the lifecycle correctness that the old path-keyed
// cache manager got wrong (rename/delete racing a tick, user-edited
// replication vectors).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "cluster/tiering_engine.h"
#include "common/logging.h"
#include "common/units.h"

namespace octo {
namespace {

ClusterSpec TieredSpec() {
  ClusterSpec spec;
  spec.num_racks = 1;
  spec.workers_per_rack = 3;
  MediumSpec memory{kMemoryTier, MediaType::kMemory, 8 * kMiB,
                    FromMBps(1900), FromMBps(3200)};
  MediumSpec ssd{kSsdTier, MediaType::kSsd, 32 * kMiB, FromMBps(340),
                 FromMBps(420)};
  MediumSpec hdd{kHddTier, MediaType::kHdd, 256 * kMiB, FromMBps(126),
                 FromMBps(177)};
  spec.media_per_worker = {memory, ssd, hdd};
  return spec;
}

/// Memory + SSD levels, fed explicitly (deterministic heat).
TieringOptions TwoLevelOptions() {
  TieringOptions options;
  options.levels = {{kMemoryTier, /*capacity_fraction=*/0.8,
                     /*promote_threshold=*/3.0},
                    {kSsdTier, /*capacity_fraction=*/0.8,
                     /*promote_threshold=*/1.0}};
  options.collect_access_stats = false;
  return options;
}

class TieringEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = Cluster::Create(TieredSpec());
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    fs_ = std::make_unique<FileSystem>(cluster_.get(),
                                       NetworkLocation("rack0", "node0"));
    CreateOptions options;
    options.rep_vector = ReplicationVector::Of(0, 0, 2);  // HDD only
    options.block_size = kMiB;
    for (const char* name : {"/hot", "/warm", "/cold"}) {
      ASSERT_TRUE(
          fs_->WriteFile(name, std::string(2 * kMiB, 'd'), options).ok());
    }
  }

  ReplicationVector RepVector(const std::string& path) {
    auto status = fs_->GetFileStatus(path);
    OCTO_CHECK(status.ok()) << status.status().ToString();
    return status->rep_vector;
  }

  void Settle() { ASSERT_TRUE(cluster_->RunReplicationToQuiescence().ok()); }

  void AdvanceSeconds(double seconds) {
    auto* sim = cluster_->simulation();
    sim->Schedule(seconds, [] {});
    sim->RunUntilIdle();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
};

// ---- the closed loop (tentpole) -------------------------------------------

// No manual RecordAccess anywhere: real client reads generate worker-side
// block-read statistics and metadata-path open counts, heartbeats carry
// them to the Master, and Tick turns them into a promotion.
TEST_F(TieringEngineTest, ClosedLoopPromotesFromRealReads) {
  TieringOptions options;
  options.levels = {{kMemoryTier, 0.8, 8.0}};
  options.collect_access_stats = true;
  TieringEngine engine(cluster_->master(), options);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fs_->ReadFile("/hot").ok());
  }
  ASSERT_TRUE(fs_->ReadFile("/cold").ok());
  ASSERT_TRUE(cluster_->PumpHeartbeats().ok());

  auto report = engine.Tick();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->promotions, 1);
  EXPECT_TRUE(engine.IsManaged("/hot"));
  EXPECT_FALSE(engine.IsManaged("/cold"));
  EXPECT_GT(engine.HeatOf("/hot"), engine.HeatOf("/cold"));
  Settle();
  EXPECT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 2));
  EXPECT_EQ(RepVector("/cold"), ReplicationVector::Of(0, 0, 2));
}

// The staged report path (StageHeartbeatStats + FlushStagedReports) must
// fold access statistics exactly like direct Heartbeat calls: same reads,
// same resulting heat.
TEST_F(TieringEngineTest, StagedHeartbeatsFoldLikeDirectOnes) {
  auto MakeHeat = [](bool staged) {
    auto created = Cluster::Create(TieredSpec());
    OCTO_CHECK(created.ok());
    std::unique_ptr<Cluster> cluster = std::move(created).value();
    FileSystem fs(cluster.get(), NetworkLocation("rack0", "node0"));
    CreateOptions options;
    options.rep_vector = ReplicationVector::Of(0, 0, 2);
    options.block_size = kMiB;
    OCTO_CHECK(fs.WriteFile("/f", std::string(2 * kMiB, 'd'), options).ok());

    TieringOptions engine_options;
    engine_options.levels = {{kMemoryTier, 0.8, 1000.0}};  // observe only
    engine_options.collect_access_stats = true;
    TieringEngine engine(cluster->master(), engine_options);

    for (int i = 0; i < 4; ++i) OCTO_CHECK(fs.ReadFile("/f").ok());
    if (staged) {
      for (WorkerId id : cluster->worker_ids()) {
        Worker* worker = cluster->worker(id);
        cluster->master()->StageHeartbeatStats(worker->BuildHeartbeat());
        worker->ClearPendingBlockReads();
      }
      cluster->master()->FlushStagedReports();
    } else {
      OCTO_CHECK(cluster->PumpHeartbeats().ok());
    }
    OCTO_CHECK(engine.Tick().ok());
    return engine.HeatOf("/f");
  };

  double direct = MakeHeat(false);
  double staged = MakeHeat(true);
  EXPECT_GT(direct, 0.0);
  EXPECT_DOUBLE_EQ(direct, staged);
}

// ---- heat model boundaries ------------------------------------------------

TEST_F(TieringEngineTest, HeatExactlyAtThresholdPromotes) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  // No simulated time passes between the accesses and the tick, so the
  // heat sits exactly on the thresholds: 3.0 -> Memory, 2.0 -> SSD.
  for (int i = 0; i < 3; ++i) engine.RecordAccess("/hot");
  for (int i = 0; i < 2; ++i) engine.RecordAccess("/warm");
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 2);
  EXPECT_EQ(engine.ManagedLevel("/hot"), 0);
  EXPECT_EQ(engine.ManagedLevel("/warm"), 1);
}

TEST_F(TieringEngineTest, HeatHalvesPerDecayInterval) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 4; ++i) engine.RecordAccess("/hot");
  EXPECT_DOUBLE_EQ(engine.HeatOf("/hot"), 4.0);
  AdvanceSeconds(60.0);  // one decay interval
  EXPECT_NEAR(engine.HeatOf("/hot"), 2.0, 1e-9);
  AdvanceSeconds(30.0);  // half an interval: continuous, not stepwise
  EXPECT_NEAR(engine.HeatOf("/hot"), 2.0 / std::sqrt(2.0), 1e-9);
}

TEST_F(TieringEngineTest, LongIdleGapDecaysInOneStep) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 5; ++i) engine.RecordAccess("/hot");
  // 1000 decay intervals in one jump: the lazy per-entry decay must not
  // iterate per interval, overflow, or leave residual heat.
  AdvanceSeconds(1000 * 60.0);
  EXPECT_NEAR(engine.HeatOf("/hot"), 0.0, 1e-12);
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 0);
  // The stone-cold entry was garbage-collected.
  EXPECT_DOUBLE_EQ(engine.HeatOf("/hot"), 0.0);
}

// ---- lifecycle regressions ------------------------------------------------

// Regression: with path-keyed state, renaming a promoted file stranded
// the manager-added memory replica forever (the eviction hit NotFound
// under the old path, dropped the accounting, and the +1 memory replica
// survived under the new name).
TEST_F(TieringEngineTest, RenamedFileIsEvictedUnderItsNewPath) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 5; ++i) engine.RecordAccess("/hot");
  ASSERT_TRUE(engine.Tick().ok());
  Settle();
  ASSERT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 2));

  ASSERT_TRUE(fs_->Rename("/hot", "/renamed").ok());
  EXPECT_TRUE(engine.IsManaged("/renamed"));
  EXPECT_FALSE(engine.IsManaged("/hot"));

  AdvanceSeconds(600.0);  // cool far below every threshold
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 1);
  EXPECT_EQ(report->eviction_skips, 0);
  EXPECT_FALSE(engine.IsManaged("/renamed"));
  Settle();
  // The engine's replica is gone; the durable ones are intact.
  EXPECT_EQ(RepVector("/renamed"), ReplicationVector::Of(0, 0, 2));
}

TEST_F(TieringEngineTest, DirectoryRenameRekeysTheSubtree) {
  CreateOptions options;
  options.rep_vector = ReplicationVector::Of(0, 0, 2);
  options.block_size = kMiB;
  ASSERT_TRUE(
      fs_->WriteFile("/dir/f", std::string(2 * kMiB, 'd'), options).ok());
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 5; ++i) engine.RecordAccess("/dir/f");
  ASSERT_TRUE(engine.Tick().ok());
  Settle();

  ASSERT_TRUE(fs_->Rename("/dir", "/dir2").ok());
  EXPECT_TRUE(engine.IsManaged("/dir2/f"));
  EXPECT_FALSE(engine.IsManaged("/dir/f"));

  AdvanceSeconds(600.0);
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 1);
  Settle();
  EXPECT_EQ(RepVector("/dir2/f"), ReplicationVector::Of(0, 0, 2));
}

// Regression: the old eviction counted an eviction (and its bytes) even
// when it skipped the actual replica removal because the user had
// already removed the manager's replica.
TEST_F(TieringEngineTest, UserRemovedReplicaIsASkipNotAnEviction) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 5; ++i) engine.RecordAccess("/hot");
  ASSERT_TRUE(engine.Tick().ok());
  Settle();
  ASSERT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 2));

  // The user strips the memory replica the engine added.
  ASSERT_TRUE(
      fs_->SetReplication("/hot", ReplicationVector::Of(0, 0, 2)).ok());
  Settle();

  AdvanceSeconds(600.0);
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 0);
  EXPECT_EQ(report->bytes_evicted, 0);
  EXPECT_EQ(report->eviction_skips, 1);
  EXPECT_FALSE(engine.IsManaged("/hot"));
}

// Regression companion: when removing the engine's replica would drop
// the file's LAST replica, the engine must keep the data and report a
// skip — previously this also counted as a full eviction.
TEST_F(TieringEngineTest, LastReplicaIsNeverDropped) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 5; ++i) engine.RecordAccess("/hot");
  ASSERT_TRUE(engine.Tick().ok());
  Settle();

  // The user reduces the file to just the (engine-added) memory replica.
  ASSERT_TRUE(
      fs_->SetReplication("/hot", ReplicationVector::Of(1, 0, 0)).ok());
  Settle();

  AdvanceSeconds(600.0);
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 0);
  EXPECT_EQ(report->eviction_skips, 1);
  EXPECT_FALSE(engine.IsManaged("/hot"));
  // The last replica survives.
  EXPECT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 0));
}

TEST_F(TieringEngineTest, DeleteRetiresStateImmediately) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 5; ++i) engine.RecordAccess("/hot");
  ASSERT_TRUE(engine.Tick().ok());
  Settle();

  ASSERT_TRUE(fs_->Delete("/hot", /*recursive=*/false,
                          /*skip_trash=*/true)
                  .ok());
  EXPECT_FALSE(engine.IsManaged("/hot"));
  // The hook-observed eviction surfaces in the next report, keeping the
  // budget accounting truthful without touching the (gone) file.
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->evictions, 1);
  EXPECT_EQ(report->bytes_evicted, 2 * kMiB);
}

// ---- migration policy -----------------------------------------------------

TEST_F(TieringEngineTest, FilesMigrateUpAndThenDown) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  for (int i = 0; i < 10; ++i) engine.RecordAccess("/hot");
  auto up = engine.Tick();
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->promotions, 1);
  EXPECT_EQ(engine.ManagedLevel("/hot"), 0);
  Settle();
  ASSERT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 2));

  // Two decay intervals: heat 10 -> 2.5, below Memory (3) but still
  // above SSD (1): the file steps DOWN a level instead of leaving.
  AdvanceSeconds(120.0);
  auto down = engine.Tick();
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->demotions, 1);
  EXPECT_EQ(down->evictions, 0);
  EXPECT_EQ(engine.ManagedLevel("/hot"), 1);
  Settle();
  EXPECT_EQ(RepVector("/hot"), ReplicationVector::Of(0, 1, 2));

  // Two more intervals: heat 0.625, below SSD too: fully evicted.
  AdvanceSeconds(120.0);
  auto out = engine.Tick();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->evictions, 1);
  EXPECT_EQ(engine.ManagedLevel("/hot"), -1);
  Settle();
  EXPECT_EQ(RepVector("/hot"), ReplicationVector::Of(0, 0, 2));
}

TEST_F(TieringEngineTest, FullFastLevelSpillsToTheColderLevel) {
  TieringOptions options = TwoLevelOptions();
  // Memory budget: 3 workers x 8 MiB x fraction = one 2 MiB file.
  options.levels[0].capacity_fraction = 2.0 * kMiB / (3 * 8 * kMiB);
  TieringEngine engine(cluster_->master(), options);
  for (int i = 0; i < 10; ++i) engine.RecordAccess("/hot");
  for (int i = 0; i < 9; ++i) engine.RecordAccess("/warm");
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 2);
  // The hottest file takes the Memory budget; the runner-up is hot
  // enough for Memory but spills to the SSD level.
  EXPECT_EQ(engine.ManagedLevel("/hot"), 0);
  EXPECT_EQ(engine.ManagedLevel("/warm"), 1);
  Settle();
  EXPECT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 2));
  EXPECT_EQ(RepVector("/warm"), ReplicationVector::Of(0, 1, 2));
}

TEST_F(TieringEngineTest, MarkedlyHotterFileDisplacesAColderResident) {
  TieringOptions options;
  // A single Memory level sized for one file: no spill target, so the
  // replacement policy has to displace.
  options.levels = {{kMemoryTier, 2.0 * kMiB / (3 * 8 * kMiB), 3.0}};
  options.collect_access_stats = false;
  TieringEngine engine(cluster_->master(), options);

  for (int i = 0; i < 5; ++i) engine.RecordAccess("/warm");
  ASSERT_TRUE(engine.Tick().ok());
  ASSERT_TRUE(engine.IsManaged("/warm"));

  for (int i = 0; i < 20; ++i) engine.RecordAccess("/hot");
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 1);
  EXPECT_EQ(report->evictions, 1);  // the displaced resident
  EXPECT_TRUE(engine.IsManaged("/hot"));
  EXPECT_FALSE(engine.IsManaged("/warm"));
  Settle();
  EXPECT_EQ(RepVector("/hot"), ReplicationVector::Of(1, 0, 2));
  EXPECT_EQ(RepVector("/warm"), ReplicationVector::Of(0, 0, 2));
}

// A one-off scan touches everything once: nothing clears the admission
// thresholds, so the scan cannot flush the fast tiers.
TEST_F(TieringEngineTest, SingleScanDoesNotPolluteTheManagedSet) {
  TieringEngine engine(cluster_->master(), TwoLevelOptions());
  // An established hot file...
  for (int i = 0; i < 10; ++i) engine.RecordAccess("/hot");
  ASSERT_TRUE(engine.Tick().ok());
  ASSERT_EQ(engine.ManagedLevel("/hot"), 0);
  // ...then a full scan touching every file once (below both
  // thresholds; SSD admission needs sustained re-reads, not one pass).
  for (const char* name : {"/hot", "/warm", "/cold"}) {
    engine.RecordAccess(name, 0.9);
  }
  auto report = engine.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promotions, 0);
  EXPECT_EQ(engine.ManagedLevel("/hot"), 0);  // undisturbed
  EXPECT_FALSE(engine.IsManaged("/warm"));
  EXPECT_FALSE(engine.IsManaged("/cold"));
}

}  // namespace
}  // namespace octo
