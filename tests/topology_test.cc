// Unit tests for network locations and the cluster topology registry.

#include <gtest/gtest.h>

#include "topology/network_location.h"
#include "topology/topology.h"

namespace octo {
namespace {

TEST(NetworkLocationTest, ParseFullLocation) {
  auto loc = NetworkLocation::Parse("/rack1/node3");
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->rack(), "rack1");
  EXPECT_EQ(loc->node(), "node3");
  EXPECT_EQ(loc->ToString(), "/rack1/node3");
  EXPECT_FALSE(loc->off_cluster());
}

TEST(NetworkLocationTest, ParseRackOnly) {
  auto loc = NetworkLocation::Parse("/rack1");
  ASSERT_TRUE(loc.ok());
  EXPECT_TRUE(loc->is_rack_only());
  EXPECT_EQ(loc->ToString(), "/rack1");
}

TEST(NetworkLocationTest, EmptyIsOffCluster) {
  auto loc = NetworkLocation::Parse("");
  ASSERT_TRUE(loc.ok());
  EXPECT_TRUE(loc->off_cluster());
  EXPECT_EQ(loc->ToString(), "");
}

TEST(NetworkLocationTest, ParseRejectsBadForms) {
  EXPECT_FALSE(NetworkLocation::Parse("rack/node").ok());
  EXPECT_FALSE(NetworkLocation::Parse("/a/b/c").ok());
}

TEST(NetworkLocationTest, DistanceFollowsHdfsConvention) {
  NetworkLocation a("r1", "n1"), a2("r1", "n1");
  NetworkLocation same_rack("r1", "n2");
  NetworkLocation other_rack("r2", "n1");
  NetworkLocation off;
  EXPECT_EQ(NetworkLocation::Distance(a, a2), 0);
  EXPECT_EQ(NetworkLocation::Distance(a, same_rack), 2);
  EXPECT_EQ(NetworkLocation::Distance(a, other_rack), 4);
  EXPECT_EQ(NetworkLocation::Distance(a, off), 6);
  EXPECT_EQ(NetworkLocation::Distance(off, off), 6);
}

TEST(NetworkLocationTest, SameNodeAndRack) {
  NetworkLocation a("r1", "n1");
  EXPECT_TRUE(a.SameNode(NetworkLocation("r1", "n1")));
  EXPECT_FALSE(a.SameNode(NetworkLocation("r1", "n2")));
  EXPECT_TRUE(a.SameRack(NetworkLocation("r1", "n2")));
  EXPECT_FALSE(a.SameRack(NetworkLocation("r2", "n1")));
  // Off-cluster locations share nothing.
  NetworkLocation off;
  EXPECT_FALSE(off.SameNode(off));
  EXPECT_FALSE(off.SameRack(NetworkLocation("", "")));
}

TEST(TopologyTest, AddAndQueryNodes) {
  NetworkTopology topo;
  ASSERT_TRUE(topo.AddNode(NetworkLocation("r1", "n1")).ok());
  ASSERT_TRUE(topo.AddNode(NetworkLocation("r1", "n2")).ok());
  ASSERT_TRUE(topo.AddNode(NetworkLocation("r2", "n1")).ok());
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_EQ(topo.num_racks(), 2);
  EXPECT_TRUE(topo.ContainsNode(NetworkLocation("r1", "n2")));
  EXPECT_FALSE(topo.ContainsNode(NetworkLocation("r3", "n1")));
  EXPECT_EQ(topo.Racks(), (std::vector<std::string>{"r1", "r2"}));
  EXPECT_EQ(topo.NodesInRack("r1").size(), 2u);
  EXPECT_EQ(topo.NodesInRack("r9").size(), 0u);
}

TEST(TopologyTest, DuplicateAddRejected) {
  NetworkTopology topo;
  ASSERT_TRUE(topo.AddNode(NetworkLocation("r1", "n1")).ok());
  EXPECT_TRUE(topo.AddNode(NetworkLocation("r1", "n1")).IsAlreadyExists());
}

TEST(TopologyTest, AddRequiresFullLocation) {
  NetworkTopology topo;
  EXPECT_TRUE(topo.AddNode(NetworkLocation("r1", "")).IsInvalidArgument());
  EXPECT_TRUE(topo.AddNode(NetworkLocation()).IsInvalidArgument());
}

TEST(TopologyTest, RemoveNodeDropsEmptyRack) {
  NetworkTopology topo;
  ASSERT_TRUE(topo.AddNode(NetworkLocation("r1", "n1")).ok());
  ASSERT_TRUE(topo.AddNode(NetworkLocation("r2", "n1")).ok());
  ASSERT_TRUE(topo.RemoveNode(NetworkLocation("r2", "n1")).ok());
  EXPECT_EQ(topo.num_racks(), 1);
  EXPECT_TRUE(topo.RemoveNode(NetworkLocation("r2", "n1")).IsNotFound());
}

}  // namespace
}  // namespace octo
