#!/usr/bin/env bash
# Builds the whole tree under ASan+UBSan (the asan-ubsan CMake preset)
# and runs the tier-1 test suite. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all), so a green ctest means a clean pass.
#
# Usage: tools/check_sanitizers.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

# halt_on_error is implied by -fno-sanitize-recover; detect_leaks stays
# on to catch slab / closure lifetime bugs in the simulation engine.
export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

ctest --preset asan-ubsan -j "$(nproc)" "$@"

# ThreadSanitizer over the concurrency suite (the "concurrency" ctest
# label): races in the fine-grained namespace locking, group-commit
# journal, staged report paths, or the fuzzy checkpoint walking the
# namespace while mutators run fail the run.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" \
    --target metadata_concurrency_test --target durability_test \
    --target repair_test

export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1
ctest --preset tsan "$@"
echo "sanitizer pass clean"
