#!/usr/bin/env bash
# Builds the tree under ASan+UBSan and runs the fault-injection / chaos
# suite (ctest label "fault") with its fixed seeds. The chaos harness is
# deterministic per seed, so a failure here is always reproducible by
# rerunning the same binary.
#
# Usage: tools/run_chaos.sh [extra ctest args...]
#   e.g. tools/run_chaos.sh --repeat until-fail:5
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

ctest --preset asan-ubsan -L fault -j "$(nproc)" "$@"
echo "chaos pass clean"
