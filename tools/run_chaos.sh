#!/usr/bin/env bash
# Builds the tree under ASan+UBSan and runs the fault-injection / chaos
# suite (ctest label "fault", which includes the "failover" tests) with
# its fixed seeds, then sweeps the master-failover chaos harness across
# extra seeds. The chaos harnesses are deterministic per seed, so a
# failure here is always reproducible by rerunning the same command.
#
# Usage: tools/run_chaos.sh [extra ctest args...]
#   e.g. tools/run_chaos.sh --repeat until-fail:5
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

ctest --preset asan-ubsan -L fault -j "$(nproc)" "$@"

# Master-failover sweep: re-run just the failover label, then the seeded
# failover chaos harness a few extra times. The per-test seeds are baked
# into the binary; repetition under the sanitizers shakes out latent
# lifetime bugs in the promote/re-register/replay path (the kind that
# only one crash-point interleaving triggers).
ctest --preset asan-ubsan -L failover -j "$(nproc)" "$@"
FAILOVER_BIN=$(find build-asan -name failover_test -type f | head -n1)
if [[ -n "${FAILOVER_BIN}" ]]; then
  for rep in 1 2 3; do
    "${FAILOVER_BIN}" --gtest_filter='FailoverChaosTest.*' \
      --gtest_brief=1 >/dev/null
  done
  echo "failover chaos sweep clean (3 repetitions)"
fi

# Write-pipeline sweep: the block-recovery suite (generation stamps,
# mid-block pipeline repair, lease recovery, dead media), then the
# 3-seed pipeline chaos harness a few extra times. Each seed injects a
# different single fault per round (pipeline-node crash, writer crash,
# dead medium, recovery-primary crash) and asserts zero
# acked-or-hflushed byte loss.
ctest --preset asan-ubsan -L pipeline -j "$(nproc)" "$@"
PIPELINE_BIN=$(find build-asan -name pipeline_recovery_test -type f | head -n1)
if [[ -n "${PIPELINE_BIN}" ]]; then
  for rep in 1 2 3; do
    "${PIPELINE_BIN}" --gtest_filter='PipelineChaosTest.*' \
      --gtest_brief=1 >/dev/null
  done
  echo "pipeline chaos sweep clean (3 repetitions)"
fi

# Durability sweep: the metadata durability suite (segmented-journal
# torn-tail recovery, fail-stop journaling, image-store atomicity,
# fuzzy checkpoints racing mutations), then the seeded crash-recovery
# chaos harness a few extra times. Each seed interleaves journal and
# image faults (torn write, ENOSPC, image corruption, crash between
# image tmp-write and rename) with a live checkpointer and asserts the
# recovered namespace equals the acked state — zero acked-op loss.
ctest --preset asan-ubsan -L durability -j "$(nproc)" "$@"
DURABILITY_BIN=$(find build-asan -name durability_test -type f | head -n1)
if [[ -n "${DURABILITY_BIN}" ]]; then
  for rep in 1 2 3; do
    "${DURABILITY_BIN}" --gtest_filter='DurabilityChaosTest.*' \
      --gtest_brief=1 >/dev/null
  done
  echo "durability chaos sweep clean (3 repetitions)"
fi

# Repair-plane sweep: the prioritized/throttled repair scheduler suite
# (decommission draining, expiry dedupe/backoff, throttle caps), then
# the 3-seed mass-failure chaos harness a few extra times. Each seed
# crashes a whole rack (~1/3 of the cluster) at once and asserts
# full-RF convergence with per-worker in-flight caps never exceeded,
# no double-queued copies, and zero acked-data loss — plus a
# decommission-mid-drain crash epilogue.
ctest --preset asan-ubsan -L repair -j "$(nproc)" "$@"
REPAIR_BIN=$(find build-asan -name repair_test -type f | head -n1)
if [[ -n "${REPAIR_BIN}" ]]; then
  for rep in 1 2 3; do
    "${REPAIR_BIN}" --gtest_filter='RepairChaosTest.*' \
      --gtest_brief=1 >/dev/null
  done
  echo "repair chaos sweep clean (3 repetitions)"
fi
echo "chaos pass clean"
