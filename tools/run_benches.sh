#!/bin/sh
# Builds the benchmarks in an optimized tree and runs the hot-path
# benches (placement decisions, simulation event engine, metadata
# plane) plus the automated-tiering scenario bench, writing
# BENCH_placement.json, BENCH_sim.json, BENCH_metadata.json, and
# BENCH_tiering.json to the repo root.
#
# Usage: tools/run_benches.sh [build-dir]
#   build-dir defaults to build-bench (Release: -O2/-O3, -DNDEBUG).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target bench_placement_hotpath \
    --target bench_sim_hotpath --target bench_metadata_hotpath \
    --target bench_tiering --target bench_repair

# The placement bench sweeps 10/100/1000/10000 workers for every policy,
# including both MOOP candidate-enumeration modes (exhaustive and the
# sublinear sampled mode of DESIGN.md §11).
"$build_dir/bench/bench_placement_hotpath" "$repo_root/BENCH_placement.json"
"$build_dir/bench/bench_sim_hotpath" "$repo_root/BENCH_sim.json"
"$build_dir/bench/bench_metadata_hotpath" "$repo_root/BENCH_metadata.json"
# Automated tiering engine vs. static placement on the skewed-read
# scenarios (zipf hot-set drift, diurnal, scan/point mix) — DESIGN.md §13.
"$build_dir/bench/bench_tiering" "$repo_root/BENCH_tiering.json"
# Repair storm (one rack crashes under a foreground read workload):
# throttled vs unthrottled re-replication — DESIGN.md §15.
"$build_dir/bench/bench_repair" "$repo_root/BENCH_repair.json"
echo "results: $repo_root/BENCH_placement.json, $repo_root/BENCH_sim.json," \
     "$repo_root/BENCH_metadata.json, $repo_root/BENCH_tiering.json," \
     "$repo_root/BENCH_repair.json"
echo "baselines (pre-optimization): BENCH_placement.baseline.json," \
     "BENCH_sim.baseline.json, BENCH_tiering.baseline.json," \
     "BENCH_metadata.baseline.json, BENCH_repair.baseline.json"

# Gate: any (workers, policy) pair that lost more than 20% throughput
# against the checked-in baseline fails the run (set -e propagates).
# For BENCH_metadata the gated row is checkpoint-stall availability
# (1 - longest mutation outage / checkpoint wall time): the 1.0
# baseline with the default 20% tolerance enforces the DESIGN.md §14
# claim that the fuzzy checkpoint never stalls mutations while the
# 1M-file image is written. The raw >= 0.8x throughput ratio is also
# in BENCH_metadata.json for hosts with >= 2 cores.
if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/tools/check_bench_regression.py" \
      "$repo_root/BENCH_placement.json" \
      "$repo_root/BENCH_placement.baseline.json"
  python3 "$repo_root/tools/check_bench_regression.py" \
      "$repo_root/BENCH_tiering.json" \
      "$repo_root/BENCH_tiering.baseline.json" \
      --metric read_mbps
  python3 "$repo_root/tools/check_bench_regression.py" \
      "$repo_root/BENCH_metadata.json" \
      "$repo_root/BENCH_metadata.baseline.json" \
      --metric mutation_availability
  # The gated row is the throttled arm's foreground-read p99 advantage
  # over unthrottled repair (p99_gain_vs_unthrottled > 1 means the
  # throttle measurably protects the read tail during a repair storm;
  # the unthrottled row carries no such metric and is skipped).
  python3 "$repo_root/tools/check_bench_regression.py" \
      "$repo_root/BENCH_repair.json" \
      "$repo_root/BENCH_repair.baseline.json" \
      --metric p99_gain_vs_unthrottled
else
  echo "warning: python3 not found, skipping bench regression check" >&2
fi
