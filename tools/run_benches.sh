#!/bin/sh
# Builds the benchmarks in an optimized tree and runs the placement
# hot-path bench, writing BENCH_placement.json to the repo root.
#
# Usage: tools/run_benches.sh [build-dir]
#   build-dir defaults to build-bench (Release: -O2/-O3, -DNDEBUG).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target bench_placement_hotpath

"$build_dir/bench/bench_placement_hotpath" "$repo_root/BENCH_placement.json"
echo "results: $repo_root/BENCH_placement.json"
echo "baseline (pre-optimization): $repo_root/BENCH_placement.baseline.json"
