#!/bin/sh
# Builds the benchmarks in an optimized tree and runs the hot-path
# benches (placement decisions, simulation event engine, metadata
# plane), writing BENCH_placement.json, BENCH_sim.json, and
# BENCH_metadata.json to the repo root.
#
# Usage: tools/run_benches.sh [build-dir]
#   build-dir defaults to build-bench (Release: -O2/-O3, -DNDEBUG).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target bench_placement_hotpath \
    --target bench_sim_hotpath --target bench_metadata_hotpath

# The placement bench sweeps 10/100/1000/10000 workers for every policy,
# including both MOOP candidate-enumeration modes (exhaustive and the
# sublinear sampled mode of DESIGN.md §11).
"$build_dir/bench/bench_placement_hotpath" "$repo_root/BENCH_placement.json"
"$build_dir/bench/bench_sim_hotpath" "$repo_root/BENCH_sim.json"
"$build_dir/bench/bench_metadata_hotpath" "$repo_root/BENCH_metadata.json"
echo "results: $repo_root/BENCH_placement.json, $repo_root/BENCH_sim.json," \
     "$repo_root/BENCH_metadata.json"
echo "baselines (pre-optimization): BENCH_placement.baseline.json," \
     "BENCH_sim.baseline.json"

# Gate: any (workers, policy) pair that lost more than 20% throughput
# against the checked-in baseline fails the run (set -e propagates).
if command -v python3 >/dev/null 2>&1; then
  python3 "$repo_root/tools/check_bench_regression.py" \
      "$repo_root/BENCH_placement.json" \
      "$repo_root/BENCH_placement.baseline.json"
else
  echo "warning: python3 not found, skipping bench regression check" >&2
fi
