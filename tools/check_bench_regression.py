#!/usr/bin/env python3
"""Compares a bench JSON against its checked-in baseline and fails on
throughput regressions.

Usage:
  tools/check_bench_regression.py CURRENT.json BASELINE.json [--tolerance 0.2]

Rows are matched by (workers, policy). A row whose decisions_per_sec
falls more than `tolerance` below the baseline's is a regression and the
script exits non-zero (run_benches.sh propagates this). Rows with no
baseline counterpart — a new cluster size or a new policy — are reported
and skipped, so extending the sweep does not require regenerating the
baseline in the same change.

The baseline is a floor, not a target: beating it (as the sampled
placement mode does by orders of magnitude at 10k workers) never fails.
"""

import argparse
import json
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("results", []):
        rows[(row["workers"], row["policy"])] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drop vs baseline "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--metric", default="decisions_per_sec",
                        help="higher-is-better metric to compare")
    args = parser.parse_args()

    current = load_results(args.current)
    baseline = load_results(args.baseline)

    regressions = []
    print(f"{'workers':>8} {'policy':<14} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7}")
    for key in sorted(current, key=lambda k: (k[0], k[1])):
        workers, policy = key
        cur = current[key].get(args.metric)
        if cur is None:
            # Row doesn't carry the gated metric (e.g. only one arm of a
            # comparison bench reports the advantage ratio) — not gated.
            print(f"{workers:>8} {policy:<14} {'-':>12} {'-':>12} "
                  f"{'n/a':>7}")
            continue
        base_row = baseline.get(key)
        if base_row is None or args.metric not in base_row:
            print(f"{workers:>8} {policy:<14} {'(none)':>12} {cur:>12.0f} "
                  f"{'new':>7}")
            continue
        base = base_row[args.metric]
        ratio = cur / base if base > 0 else float("inf")
        flag = " REGRESSION" if ratio < 1.0 - args.tolerance else ""
        print(f"{workers:>8} {policy:<14} {base:>12.0f} {cur:>12.0f} "
              f"{ratio:>6.2f}x{flag}")
        if flag:
            regressions.append((workers, policy, base, cur, ratio))

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for workers, policy, base, cur, ratio in regressions:
            print(f"  {policy} at {workers} workers: {base:.0f} -> {cur:.0f} "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
