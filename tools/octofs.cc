// octofs — a command-line client for a persistent, single-machine
// OctopusFS instance. Each invocation boots the cluster from a state
// directory (fsimage + edit log + disk-backed block stores), runs one
// command, checkpoints, and exits — exercising the same recovery path a
// Backup Master uses.
//
//   octofs --state DIR init [racks workers]   create an instance
//   octofs --state DIR mkdir /path
//   octofs --state DIR put LOCAL /path [M,S,H,R,U]
//   octofs --state DIR get /path LOCAL
//   octofs --state DIR cat /path
//   octofs --state DIR ls /path
//   octofs --state DIR rm [-r] /path
//   octofs --state DIR mv /src /dst
//   octofs --state DIR setrep /path M,S,H,R,U
//   octofs --state DIR locations /path
//   octofs --state DIR report
//   octofs --state DIR fsck
//   octofs --state DIR balance

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "cluster/rebalancer.h"
#include "common/config.h"
#include "common/units.h"
#include "namespacefs/fsimage.h"

using namespace octo;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "octofs: %s\n", message.c_str());
  return 1;
}

int FailIfError(const Status& st) {
  if (!st.ok()) return Fail(st.ToString());
  return 0;
}

ClusterSpec SpecFromConfig(const Config& config, const std::string& state) {
  ClusterSpec spec;
  spec.num_racks = static_cast<int>(config.GetInt("racks", 2));
  spec.workers_per_rack = static_cast<int>(config.GetInt("workers", 2));
  spec.with_simulation = false;  // a real (if small) file system
  spec.block_dir_root = state + "/blocks";
  spec.master.edit_log_path = state + "/editlog";
  int64_t mem = config.GetInt("memory_mib", 64) * kMiB;
  int64_t ssd = config.GetInt("ssd_mib", 256) * kMiB;
  int64_t hdd = config.GetInt("hdd_mib", 1024) * kMiB;
  spec.media_per_worker = {
      {kMemoryTier, MediaType::kMemory, mem, FromMBps(1897.4),
       FromMBps(3224.8)},
      {kSsdTier, MediaType::kSsd, ssd, FromMBps(340.6), FromMBps(419.5)},
      {kHddTier, MediaType::kHdd, hdd, FromMBps(126.3), FromMBps(177.1)},
      {kHddTier, MediaType::kHdd, hdd, FromMBps(126.3), FromMBps(177.1)},
  };
  return spec;
}

Result<Config> LoadConfig(const std::string& state) {
  std::ifstream in(state + "/config");
  if (!in) {
    return Status::NotFound("no instance at " + state +
                            " (run 'octofs --state " + state + " init')");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Config config;
  OCTO_RETURN_IF_ERROR(config.ParseLines(buffer.str()));
  return config;
}

/// Boots the cluster: fsimage + edit log tail -> namespace & block
/// records; block reports from the disk stores -> replica locations.
Result<std::unique_ptr<Cluster>> Boot(const std::string& state,
                                      const Config& config) {
  OCTO_ASSIGN_OR_RETURN(std::unique_ptr<Cluster> cluster,
                        Cluster::Create(SpecFromConfig(config, state)));
  Master* master = cluster->master();
  std::ifstream image_in(state + "/fsimage");
  if (image_in) {
    std::ostringstream image;
    image << image_in.rdbuf();
    // The on-disk edit log holds every record since the last checkpoint.
    OCTO_RETURN_IF_ERROR(
        master->LoadImage(image.str(), master->edit_log()->entries(), 0));
  }
  OCTO_RETURN_IF_ERROR(cluster->SendBlockReports());
  // Repair any under-replication found at boot.
  OCTO_RETURN_IF_ERROR(cluster->RunReplicationToQuiescence().status());
  return cluster;
}

/// Checkpoint: persist the namespace and truncate the edit log.
Status Checkpoint(const std::string& state, Cluster* cluster) {
  OCTO_RETURN_IF_ERROR(FsImage::Save(cluster->master()->namespace_tree(),
                                     state + "/fsimage"));
  return cluster->master()->edit_log()->Truncate();
}

Result<ReplicationVector> ParseVector(const std::string& text) {
  return ReplicationVector::ParseShorthand(text);
}

void PrintStatus(const FileStatus& st) {
  std::printf("%c%03o %-8s %10lld  %-24s", st.is_dir ? 'd' : '-', st.mode,
              st.owner.c_str(), static_cast<long long>(st.length),
              st.path.c_str());
  if (!st.is_dir) std::printf("  %s", st.rep_vector.ToString().c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string state;
  size_t i = 0;
  if (i + 1 < args.size() && args[i] == "--state") {
    state = args[i + 1];
    i += 2;
  }
  if (state.empty() || i >= args.size()) {
    return Fail("usage: octofs --state DIR COMMAND [args] (see header)");
  }
  std::string command = args[i++];
  std::vector<std::string> rest(args.begin() + i, args.end());

  if (command == "init") {
    Config config;
    config.SetInt("racks", rest.size() > 0 ? std::atoi(rest[0].c_str()) : 2);
    config.SetInt("workers",
                  rest.size() > 1 ? std::atoi(rest[1].c_str()) : 2);
    std::error_code ec;
    std::filesystem::create_directories(state, ec);
    if (ec) return Fail("cannot create " + state + ": " + ec.message());
    std::ofstream out(state + "/config");
    for (const auto& [key, value] : config.entries()) {
      out << key << " = " << value << "\n";
    }
    if (!out) return Fail("cannot write " + state + "/config");
    std::printf("initialized OctopusFS instance at %s\n", state.c_str());
    return 0;
  }

  auto config = LoadConfig(state);
  if (!config.ok()) return Fail(config.status().ToString());
  auto booted = Boot(state, *config);
  if (!booted.ok()) return Fail(booted.status().ToString());
  Cluster* cluster = booted->get();
  FileSystem fs(cluster, cluster->worker(0)->location());

  int rc = 0;
  if (command == "mkdir" && rest.size() == 1) {
    rc = FailIfError(fs.Mkdirs(rest[0]));
  } else if (command == "put" && (rest.size() == 2 || rest.size() == 3)) {
    std::ifstream in(rest[0], std::ios::binary);
    if (!in) return Fail("cannot read local file " + rest[0]);
    std::ostringstream data;
    data << in.rdbuf();
    CreateOptions options;
    options.block_size = 8 * kMiB;
    options.overwrite = true;
    if (rest.size() == 3) {
      auto rv = ParseVector(rest[2]);
      if (!rv.ok()) return Fail(rv.status().ToString());
      options.rep_vector = *rv;
    }
    rc = FailIfError(fs.WriteFile(rest[1], data.str(), options));
  } else if (command == "get" && rest.size() == 2) {
    auto data = fs.ReadFile(rest[0]);
    if (!data.ok()) return Fail(data.status().ToString());
    std::ofstream out(rest[1], std::ios::binary);
    out.write(data->data(), static_cast<std::streamsize>(data->size()));
    if (!out) return Fail("cannot write local file " + rest[1]);
  } else if (command == "cat" && rest.size() == 1) {
    auto data = fs.ReadFile(rest[0]);
    if (!data.ok()) return Fail(data.status().ToString());
    std::fwrite(data->data(), 1, data->size(), stdout);
  } else if (command == "ls" && rest.size() == 1) {
    auto listing = fs.ListDirectory(rest[0]);
    if (!listing.ok()) return Fail(listing.status().ToString());
    for (const FileStatus& st : *listing) PrintStatus(st);
  } else if (command == "rm" && !rest.empty()) {
    bool recursive = rest[0] == "-r";
    const std::string& path = recursive ? rest[1] : rest[0];
    rc = FailIfError(fs.Delete(path, recursive));
  } else if (command == "mv" && rest.size() == 2) {
    rc = FailIfError(fs.Rename(rest[0], rest[1]));
  } else if (command == "setrep" && rest.size() == 2) {
    auto rv = ParseVector(rest[1]);
    if (!rv.ok()) return Fail(rv.status().ToString());
    rc = FailIfError(fs.SetReplication(rest[0], *rv));
    if (rc == 0) {
      // Execute the moves/copies before exiting (they are asynchronous).
      auto rounds = cluster->RunReplicationToQuiescence();
      if (!rounds.ok()) rc = Fail(rounds.status().ToString());
    }
  } else if (command == "locations" && rest.size() == 1) {
    auto status = fs.GetFileStatus(rest[0]);
    if (!status.ok()) return Fail(status.status().ToString());
    auto located = fs.GetFileBlockLocations(rest[0], 0, status->length);
    if (!located.ok()) return Fail(located.status().ToString());
    for (const LocatedBlock& block : *located) {
      std::printf("block %lld offset %lld length %lld\n",
                  static_cast<long long>(block.block.id),
                  static_cast<long long>(block.offset),
                  static_cast<long long>(block.block.length));
      for (const PlacedReplica& replica : block.locations) {
        const TierInfo* tier =
            cluster->master()->cluster_state().FindTier(replica.tier);
        std::printf("  %-8s %s (medium %d)\n",
                    tier != nullptr ? tier->name.c_str() : "?",
                    replica.location.ToString().c_str(), replica.medium);
      }
    }
  } else if (command == "report" && rest.empty()) {
    auto reports = fs.GetStorageTierReports();
    if (!reports.ok()) return Fail(reports.status().ToString());
    std::printf("%-8s %7s %8s %12s %12s %10s %10s\n", "Tier", "#media",
                "#workers", "capacity", "remaining", "write", "read");
    for (const StorageTierReport& tier : *reports) {
      std::printf("%-8s %7d %8d %12s %12s %10s %10s\n", tier.name.c_str(),
                  tier.num_media, tier.num_workers,
                  FormatBytes(tier.capacity_bytes).c_str(),
                  FormatBytes(tier.remaining_bytes).c_str(),
                  FormatThroughputMBps(tier.avg_write_bps).c_str(),
                  FormatThroughputMBps(tier.avg_read_bps).c_str());
    }
    std::printf("files: %lld  directories: %lld  blocks: %lld\n",
                static_cast<long long>(
                    cluster->master()->namespace_tree().NumFiles()),
                static_cast<long long>(
                    cluster->master()->namespace_tree().NumDirectories()),
                static_cast<long long>(
                    cluster->master()->block_manager().NumBlocks()));
  } else if (command == "fsck" && rest.empty()) {
    int under = 0, total = 0;
    cluster->master()->block_manager().ForEach([&](const BlockRecord& rec) {
      ++total;
      if (static_cast<int>(rec.locations.size()) < rec.expected.total()) {
        ++under;
        std::printf("under-replicated: block %lld of %s (%zu/%d)\n",
                    static_cast<long long>(rec.id), rec.file.c_str(),
                    rec.locations.size(), rec.expected.total());
      }
    });
    auto corrupt = cluster->RunScrubber();
    if (!corrupt.ok()) return Fail(corrupt.status().ToString());
    std::printf("fsck: %d blocks, %d under-replicated, %d corrupt replicas "
                "found%s\n",
                total, under, *corrupt,
                *corrupt > 0 ? " (repair scheduled)" : "");
  } else if (command == "balance" && rest.empty()) {
    Rebalancer rebalancer(cluster->master());
    for (int pass = 0; pass < 10; ++pass) {
      auto report = rebalancer.Run();
      if (!report.ok()) return Fail(report.status().ToString());
      auto pumped = cluster->PumpHeartbeats();
      if (!pumped.ok()) return Fail(pumped.status().ToString());
      (void)cluster->PumpHeartbeats();
      std::printf("pass %d: %d moves (%s)\n", pass, report->moves_scheduled,
                  FormatBytes(report->bytes_scheduled).c_str());
      if (report->moves_scheduled == 0) break;
    }
  } else {
    return Fail("unknown command or wrong arguments: " + command);
  }

  if (rc == 0) {
    Status st = Checkpoint(state, cluster);
    if (!st.ok()) return Fail("checkpoint failed: " + st.ToString());
  }
  return rc;
}
