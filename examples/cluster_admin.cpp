// Cluster administration walk-through: per-tier quotas for multi-tenancy,
// permission enforcement, Backup Master checkpointing, worker failure with
// automatic re-replication, and master failover.
//
// Build & run:  ./build/examples/cluster_admin

#include <cstdio>

#include "client/file_system.h"
#include "cluster/backup_master.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

using namespace octo;

int main() {
  ClusterSpec spec = PaperClusterSpec();
  spec.master.enable_permissions = true;
  auto cluster = Cluster::Create(spec);
  Master* master = cluster->get()->master();

  // --- multi-tenancy: per-tier quotas and permissions ----------------------
  UserContext admin{"root", {}};
  UserContext alice{"alice", {"analytics"}};
  OCTO_CHECK_OK(master->Mkdirs("/users/alice", admin));
  // Hand the home directory to its owner (permissions are enforced).
  OCTO_CHECK_OK(master->SetOwner("/users/alice", "alice", "analytics",
                                 admin));
  // Alice may use at most 64 MiB of the (scarce) Memory tier and
  // 1 GiB of total space.
  OCTO_CHECK_OK(master->SetQuota("/users/alice", kMemoryTier, 64 * kMiB));
  OCTO_CHECK_OK(master->SetQuota("/users/alice", kTotalSpaceSlot, 1 * kGiB));
  std::printf("Quotas on /users/alice: Memory<=64MiB, total<=1GiB\n");

  FileSystem alice_fs(cluster->get(), NetworkLocation("rack1", "node1"),
                      alice);
  CreateOptions in_memory;
  in_memory.rep_vector = ReplicationVector::Of(1, 0, 2);
  in_memory.block_size = 8 * kMiB;

  // 32 MiB in memory fits the quota; the next 48 MiB does not.
  Status st = alice_fs.WriteFile("/users/alice/hot1",
                                 std::string(32 * kMiB, 'a'), in_memory);
  std::printf("  write 32MiB with memory replica: %s\n",
              st.ToString().c_str());
  st = alice_fs.WriteFile("/users/alice/hot2", std::string(48 * kMiB, 'b'),
                          in_memory);
  std::printf("  write another 48MiB with memory replica: %s\n",
              st.ToString().c_str());

  // Permission enforcement: bob cannot write into alice's directory.
  UserContext bob{"bob", {}};
  FileSystem bob_fs(cluster->get(), NetworkLocation("rack1", "node2"), bob);
  st = bob_fs.WriteFile("/users/alice/intruder", "x", CreateOptions{});
  std::printf("  bob writing into /users/alice: %s\n",
              st.ToString().c_str());

  // --- backup master: checkpoint + edit log tail ---------------------------
  BackupMaster backup(master, master->clock());
  OCTO_CHECK_OK(backup.CreateCheckpoint().status());
  std::printf("\nBackup checkpoint covers %lld edit records\n",
              static_cast<long long>(backup.checkpoint_offset()));

  // --- worker failure and re-replication -----------------------------------
  auto located =
      alice_fs.GetFileBlockLocations("/users/alice/hot1", 0, 32 * kMiB);
  WorkerId victim = (*located)[0].locations[0].worker;
  std::printf("\nStopping worker %d (hosts a replica of hot1)...\n", victim);
  cluster->get()->StopWorker(victim);
  auto rounds = cluster->get()->RunReplicationToQuiescence();
  std::printf("  replication monitor restored full replication in %d "
              "rounds\n", *rounds);
  auto read = alice_fs.ReadFile("/users/alice/hot1");
  std::printf("  hot1 still readable: %s\n",
              read.ok() ? "yes" : read.status().ToString().c_str());

  // --- master failover -------------------------------------------------------
  auto replacement = backup.TakeOver(MasterOptions{}, master->clock());
  std::printf("\nFailover to replacement master: %s\n",
              replacement.ok() ? "ok"
                               : replacement.status().ToString().c_str());
  auto status = (*replacement)->GetFileStatus("/users/alice/hot1", admin);
  std::printf("  /users/alice/hot1 on the new master: %s (%s)\n",
              status.ok() ? "present" : status.status().ToString().c_str(),
              status.ok() ? FormatBytes(status->length).c_str() : "-");
  return 0;
}
