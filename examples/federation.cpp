// Federation + trash walk-through: two independent OctopusFS clusters
// behind one client-side mount table (paper §2.1), with recoverable
// deletes enabled on the warehouse cluster.
//
// Build & run:  ./build/examples/federation

#include <cstdio>

#include "client/federated_file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"

using namespace octo;

int main() {
  // Cluster A: the data warehouse (trash enabled). Cluster B: log storage.
  ClusterSpec warehouse_spec = PaperClusterSpec();
  warehouse_spec.master.enable_trash = true;
  auto warehouse = Cluster::Create(warehouse_spec).value();
  auto logs = Cluster::Create(PaperClusterSpec()).value();

  FileSystem warehouse_fs(warehouse.get(), NetworkLocation("rack0", "node0"));
  FileSystem logs_fs(logs.get(), NetworkLocation("rack0", "node0"));

  FederatedFileSystem fed;
  OCTO_CHECK_OK(fed.Mount("/warehouse", &warehouse_fs));
  OCTO_CHECK_OK(fed.Mount("/logs", &logs_fs));

  std::printf("mount table:\n");
  for (const std::string& mount : fed.MountPoints()) {
    std::printf("  %s\n", mount.c_str());
  }

  // Writes route to the owning cluster transparently.
  CreateOptions options;
  options.block_size = 8 * kMiB;
  options.rep_vector = ReplicationVector::Of(0, 1, 2);
  OCTO_CHECK_OK(
      fed.WriteFile("/warehouse/sales/2026.parquet",
                    std::string(4 * kMiB, 'w'), options));
  OCTO_CHECK_OK(fed.WriteFile("/logs/app/today.log",
                              std::string(2 * kMiB, 'l'), options));
  std::printf("\n/warehouse/sales/2026.parquet -> cluster A (%s)\n",
              warehouse_fs.Exists("/warehouse/sales/2026.parquet") ? "yes"
                                                                   : "no");
  std::printf("/logs/app/today.log           -> cluster B (%s)\n",
              logs_fs.Exists("/logs/app/today.log") ? "yes" : "no");

  // Aggregated capacity view across both clusters.
  auto reports = fed.GetStorageTierReports();
  std::printf("\nfederated tier reports (both clusters):\n");
  for (const StorageTierReport& tier : *reports) {
    std::printf("  %-8s %2d media across %2d workers, %s total\n",
                tier.name.c_str(), tier.num_media, tier.num_workers,
                FormatBytes(tier.capacity_bytes).c_str());
  }

  // Cross-mount renames are refused; within a mount they work.
  Status cross = fed.Rename("/warehouse/sales/2026.parquet", "/logs/moved");
  std::printf("\ncross-mount rename: %s\n", cross.ToString().c_str());

  // Recoverable delete on the warehouse side.
  OCTO_CHECK_OK(fed.Delete("/warehouse/sales/2026.parquet"));
  std::printf("after delete, recoverable copy at /.Trash: %s\n",
              warehouse_fs.Exists("/.Trash/root/2026.parquet") ? "yes"
                                                               : "no");
  OCTO_CHECK_OK(warehouse_fs.Rename("/.Trash/root/2026.parquet",
                                    "/warehouse/sales/2026.parquet"));
  auto restored = fed.ReadFile("/warehouse/sales/2026.parquet");
  std::printf("restored from trash: %s (%s)\n",
              restored.ok() ? "yes" : "no",
              FormatBytes(static_cast<int64_t>(restored->size())).c_str());
  OCTO_CHECK_OK(warehouse_fs.ExpungeTrash());
  return 0;
}
