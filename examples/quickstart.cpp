// Quickstart: bring up an in-process OctopusFS cluster, write a file with
// an explicit replication vector, inspect where its blocks landed, move a
// replica between tiers with setReplication, and read the data back.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/units.h"

using namespace octo;

int main() {
  // A cluster shaped like the paper's evaluation testbed: 9 workers in
  // 3 racks, each with a memory tier, one SSD, and three HDDs.
  auto cluster = Cluster::Create(PaperClusterSpec());
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }

  // A client collocated with the first worker node.
  FileSystem fs(cluster->get(), NetworkLocation("rack0", "node0"));

  // --- storage tier reports (Table 1: getStorageTierReports) -------------
  auto reports = fs.GetStorageTierReports();
  std::printf("Active storage tiers:\n");
  for (const StorageTierReport& tier : *reports) {
    std::printf("  %-8s %2d media on %d workers, %s capacity, "
                "%s write / %s read\n",
                tier.name.c_str(), tier.num_media, tier.num_workers,
                FormatBytes(tier.capacity_bytes).c_str(),
                FormatThroughputMBps(tier.avg_write_bps).c_str(),
                FormatThroughputMBps(tier.avg_read_bps).c_str());
  }

  // --- write a file with one memory and two HDD replicas ------------------
  CreateOptions options;
  options.rep_vector = ReplicationVector::Of(/*memory=*/1, /*ssd=*/0,
                                             /*hdd=*/2);
  options.block_size = 4 * kMiB;
  std::string data(10 * kMiB, 'x');
  Status st = fs.WriteFile("/demo/data.bin", data, options);
  if (!st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nWrote /demo/data.bin (%s) with replication vector %s\n",
              FormatBytes(static_cast<int64_t>(data.size())).c_str(),
              options.rep_vector.ToString().c_str());

  // --- inspect block locations (tier-aware getFileBlockLocations) ---------
  auto located = fs.GetFileBlockLocations("/demo/data.bin", 0, data.size());
  for (const LocatedBlock& block : *located) {
    std::printf("  block %lld (%s) replicas:",
                static_cast<long long>(block.block.id),
                FormatBytes(block.block.length).c_str());
    for (const PlacedReplica& replica : block.locations) {
      const TierInfo* tier =
          cluster->get()->master()->cluster_state().FindTier(replica.tier);
      std::printf(" [%s on %s]", tier ? tier->name.c_str() : "?",
                  replica.location.ToString().c_str());
    }
    std::printf("\n");
  }

  // --- move the memory replica to the SSD tier ----------------------------
  // <1,0,2> -> <0,1,2>: OctopusFS copies to SSD and drops the memory copy.
  st = fs.SetReplication("/demo/data.bin", ReplicationVector::Of(0, 1, 2));
  std::printf("\nsetReplication -> %s: %s\n",
              ReplicationVector::Of(0, 1, 2).ToString().c_str(),
              st.ToString().c_str());
  // The moves execute asynchronously via worker heartbeats:
  (void)cluster->get()->RunReplicationToQuiescence();

  located = fs.GetFileBlockLocations("/demo/data.bin", 0, data.size());
  std::printf("After the move:\n");
  for (const LocatedBlock& block : *located) {
    std::printf("  block %lld replicas:",
                static_cast<long long>(block.block.id));
    for (const PlacedReplica& replica : block.locations) {
      const TierInfo* tier =
          cluster->get()->master()->cluster_state().FindTier(replica.tier);
      std::printf(" [%s on %s]", tier ? tier->name.c_str() : "?",
                  replica.location.ToString().c_str());
    }
    std::printf("\n");
  }

  // --- read it back --------------------------------------------------------
  auto read = fs.ReadFile("/demo/data.bin");
  std::printf("\nRead back %s: %s\n",
              FormatBytes(static_cast<int64_t>(read->size())).c_str(),
              (*read == data ? "content verified" : "MISMATCH"));
  return *read == data ? 0 : 1;
}
