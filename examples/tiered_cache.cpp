// Multi-level cache management (paper §6, "Multi-level cache management"):
// an application uses replication vectors to pin its hot working set in
// the Memory tier, demote cold data, and serve a remote dataset through
// the stand-alone mount's read-through cache.
//
// Build & run:  ./build/examples/tiered_cache

#include <cstdio>
#include <string>
#include <vector>

#include "client/file_system.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"
#include "remote/external_store.h"
#include "remote/standalone_mount.h"

using namespace octo;

namespace {

void PrintTierUsage(FileSystem* fs, const char* label) {
  auto reports = fs->GetStorageTierReports();
  std::printf("%-28s", label);
  for (const StorageTierReport& tier : *reports) {
    std::printf("  %s %10s", tier.name.c_str(),
                FormatBytes(tier.capacity_bytes - tier.remaining_bytes)
                    .c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto cluster = Cluster::Create(PaperClusterSpec());
  FileSystem fs(cluster->get(), NetworkLocation("rack0", "node0"));

  // --- a cache manager promoting / demoting datasets ----------------------
  // Three datasets land on persistent tiers first.
  CreateOptions cold;
  cold.rep_vector = ReplicationVector::Of(0, 0, 3);
  cold.block_size = 8 * kMiB;
  std::string payload(24 * kMiB, 'd');
  for (const char* name : {"/warehouse/day1", "/warehouse/day2",
                           "/warehouse/day3"}) {
    OCTO_CHECK_OK(fs.WriteFile(name, payload, cold));
  }
  PrintTierUsage(&fs, "after ingest (all HDD):");

  // The application knows /warehouse/day3 is tomorrow's hot input: pin one
  // replica in memory and one on SSD, keeping one HDD copy for durability.
  OCTO_CHECK_OK(
      fs.SetReplication("/warehouse/day3", ReplicationVector::Of(1, 1, 1)));
  (void)cluster->get()->RunReplicationToQuiescence();
  PrintTierUsage(&fs, "after promoting day3:");

  // Later, day3 cools down again: drop the fast-tier copies.
  OCTO_CHECK_OK(
      fs.SetReplication("/warehouse/day3", ReplicationVector::Of(0, 0, 3)));
  (void)cluster->get()->RunReplicationToQuiescence();
  PrintTierUsage(&fs, "after demoting day3:");

  // --- stand-alone remote storage with read-through caching ---------------
  // An external object store (think S3 / NAS) mounted at /remote.
  ExternalStore store;
  OCTO_CHECK_OK(store.PutObject("/datasets/events.csv",
                                std::string(4 * kMiB, 'e')));
  OCTO_CHECK_OK(store.PutObject("/datasets/users.csv",
                                std::string(2 * kMiB, 'u')));

  CreateOptions cache_options;
  cache_options.rep_vector = ReplicationVector::Of(0, 1, 1);  // SSD + HDD
  cache_options.block_size = 8 * kMiB;
  StandaloneMount mount(&fs, &store, "/remote", cache_options);

  auto listing = mount.List("/datasets");
  std::printf("\n/remote listing (unified view):\n");
  for (const std::string& name : *listing) {
    std::printf("  %s%s\n", name.c_str(),
                mount.IsCached(name) ? "  [cached]" : "");
  }

  // First read misses and populates the on-cluster cache; the second hits.
  (void)mount.Read("/datasets/events.csv");
  (void)mount.Read("/datasets/events.csv");
  // Prefetch the other object straight into memory+SSD.
  OCTO_CHECK_OK(
      mount.Warm("/datasets/users.csv", ReplicationVector::Of(1, 1, 0)));
  std::printf("\nafter reads: hits=%lld misses=%lld, users.csv cached=%s\n",
              static_cast<long long>(mount.cache_hits()),
              static_cast<long long>(mount.cache_misses()),
              mount.IsCached("/datasets/users.csv") ? "yes" : "no");
  PrintTierUsage(&fs, "after remote caching:");
  return 0;
}
