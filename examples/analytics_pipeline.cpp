// Analytics pipeline: runs a MapReduce-style job (word count over a 4 GB
// corpus) on the simulated cluster twice — once with data managed by
// HDFS-style placement/retrieval, once by OctopusFS — and reports the
// end-to-end difference, mirroring the paper's §7.5 methodology.
//
// Build & run:  ./build/examples/analytics_pipeline

#include <cstdio>

#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/units.h"
#include "core/placement.h"
#include "core/retrieval.h"
#include "exec/hibench.h"
#include "exec/mapreduce_engine.h"
#include "workload/transfer_engine.h"

using namespace octo;

namespace {

exec::JobStats RunOn(bool octopus) {
  ClusterSpec spec = PaperClusterSpec();
  auto cluster = Cluster::Create(spec);
  OCTO_CHECK(cluster.ok());
  Master* master = cluster->get()->master();
  if (octopus) {
    MoopOptions moop;
    moop.use_memory = true;
    master->SetPlacementPolicy(MakeMoopPolicy(moop));
    // Tier-aware retrieval is already the default.
  } else {
    master->SetPlacementPolicy(MakeHdfsPolicy({MediaType::kHdd}));
    master->SetRetrievalPolicy(MakeHdfsRetrievalPolicy());
  }

  workload::TransferEngine transfers(cluster->get());
  exec::MapReduceEngine engine(&transfers);

  exec::HibenchWorkload wordcount;
  wordcount.name = "Wordcount";
  wordcount.input_bytes = 4 * kGiB;
  wordcount.shuffle_ratio = 0.05;
  wordcount.output_ratio = 0.02;
  wordcount.map_cpu_sec_per_mb = 0.015;
  wordcount.reduce_cpu_sec_per_mb = 0.005;

  auto stats = exec::RunHibenchMapReduce(&engine, &transfers, wordcount,
                                         "/corpus", "/jobs/wordcount");
  OCTO_CHECK(stats.ok()) << stats.status().ToString();
  return *stats;
}

}  // namespace

int main() {
  std::printf("Running word count (4 GiB corpus, 9 workers)...\n\n");
  exec::JobStats hdfs = RunOn(/*octopus=*/false);
  exec::JobStats octo = RunOn(/*octopus=*/true);

  std::printf("%-22s %12s %12s\n", "", "HDFS", "OctopusFS");
  std::printf("%-22s %11.1fs %11.1fs\n", "job time", hdfs.elapsed_seconds,
              octo.elapsed_seconds);
  std::printf("%-22s %12d %12d\n", "map tasks", hdfs.num_map_tasks,
              octo.num_map_tasks);
  std::printf("%-22s %11.0f%% %11.0f%%\n", "node-local maps",
              100 * hdfs.LocalityFraction(), 100 * octo.LocalityFraction());
  std::printf("%-22s %12s %12s\n", "input read",
              FormatBytes(hdfs.input_bytes).c_str(),
              FormatBytes(octo.input_bytes).c_str());
  std::printf("\nOctopusFS speedup: %.2fx\n",
              hdfs.elapsed_seconds / octo.elapsed_seconds);
  return 0;
}
