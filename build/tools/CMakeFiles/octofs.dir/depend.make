# Empty dependencies file for octofs.
# This may be replaced when dependencies are built.
