file(REMOVE_RECURSE
  "CMakeFiles/octofs.dir/octofs.cc.o"
  "CMakeFiles/octofs.dir/octofs.cc.o.d"
  "octofs"
  "octofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
