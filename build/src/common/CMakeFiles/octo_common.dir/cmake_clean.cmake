file(REMOVE_RECURSE
  "CMakeFiles/octo_common.dir/clock.cc.o"
  "CMakeFiles/octo_common.dir/clock.cc.o.d"
  "CMakeFiles/octo_common.dir/config.cc.o"
  "CMakeFiles/octo_common.dir/config.cc.o.d"
  "CMakeFiles/octo_common.dir/logging.cc.o"
  "CMakeFiles/octo_common.dir/logging.cc.o.d"
  "CMakeFiles/octo_common.dir/status.cc.o"
  "CMakeFiles/octo_common.dir/status.cc.o.d"
  "CMakeFiles/octo_common.dir/strings.cc.o"
  "CMakeFiles/octo_common.dir/strings.cc.o.d"
  "CMakeFiles/octo_common.dir/units.cc.o"
  "CMakeFiles/octo_common.dir/units.cc.o.d"
  "libocto_common.a"
  "libocto_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
