# Empty dependencies file for octo_common.
# This may be replaced when dependencies are built.
