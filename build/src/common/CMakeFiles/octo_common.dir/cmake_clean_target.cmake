file(REMOVE_RECURSE
  "libocto_common.a"
)
