file(REMOVE_RECURSE
  "libocto_exec.a"
)
