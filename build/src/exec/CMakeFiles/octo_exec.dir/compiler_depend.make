# Empty compiler generated dependencies file for octo_exec.
# This may be replaced when dependencies are built.
