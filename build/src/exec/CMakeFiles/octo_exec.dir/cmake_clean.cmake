file(REMOVE_RECURSE
  "CMakeFiles/octo_exec.dir/hibench.cc.o"
  "CMakeFiles/octo_exec.dir/hibench.cc.o.d"
  "CMakeFiles/octo_exec.dir/mapreduce_engine.cc.o"
  "CMakeFiles/octo_exec.dir/mapreduce_engine.cc.o.d"
  "CMakeFiles/octo_exec.dir/pegasus.cc.o"
  "CMakeFiles/octo_exec.dir/pegasus.cc.o.d"
  "CMakeFiles/octo_exec.dir/slot_scheduler.cc.o"
  "CMakeFiles/octo_exec.dir/slot_scheduler.cc.o.d"
  "CMakeFiles/octo_exec.dir/spark_engine.cc.o"
  "CMakeFiles/octo_exec.dir/spark_engine.cc.o.d"
  "libocto_exec.a"
  "libocto_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
