
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/backup_master.cc" "src/cluster/CMakeFiles/octo_cluster.dir/backup_master.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/backup_master.cc.o.d"
  "/root/repo/src/cluster/block_manager.cc" "src/cluster/CMakeFiles/octo_cluster.dir/block_manager.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/block_manager.cc.o.d"
  "/root/repo/src/cluster/cache_manager.cc" "src/cluster/CMakeFiles/octo_cluster.dir/cache_manager.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/cache_manager.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/octo_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/federation.cc" "src/cluster/CMakeFiles/octo_cluster.dir/federation.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/federation.cc.o.d"
  "/root/repo/src/cluster/master.cc" "src/cluster/CMakeFiles/octo_cluster.dir/master.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/master.cc.o.d"
  "/root/repo/src/cluster/rebalancer.cc" "src/cluster/CMakeFiles/octo_cluster.dir/rebalancer.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/rebalancer.cc.o.d"
  "/root/repo/src/cluster/worker.cc" "src/cluster/CMakeFiles/octo_cluster.dir/worker.cc.o" "gcc" "src/cluster/CMakeFiles/octo_cluster.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/octo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/namespacefs/CMakeFiles/octo_namespacefs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/octo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/octo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/octo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/octo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
