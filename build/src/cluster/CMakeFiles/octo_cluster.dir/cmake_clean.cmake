file(REMOVE_RECURSE
  "CMakeFiles/octo_cluster.dir/backup_master.cc.o"
  "CMakeFiles/octo_cluster.dir/backup_master.cc.o.d"
  "CMakeFiles/octo_cluster.dir/block_manager.cc.o"
  "CMakeFiles/octo_cluster.dir/block_manager.cc.o.d"
  "CMakeFiles/octo_cluster.dir/cache_manager.cc.o"
  "CMakeFiles/octo_cluster.dir/cache_manager.cc.o.d"
  "CMakeFiles/octo_cluster.dir/cluster.cc.o"
  "CMakeFiles/octo_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/octo_cluster.dir/federation.cc.o"
  "CMakeFiles/octo_cluster.dir/federation.cc.o.d"
  "CMakeFiles/octo_cluster.dir/master.cc.o"
  "CMakeFiles/octo_cluster.dir/master.cc.o.d"
  "CMakeFiles/octo_cluster.dir/rebalancer.cc.o"
  "CMakeFiles/octo_cluster.dir/rebalancer.cc.o.d"
  "CMakeFiles/octo_cluster.dir/worker.cc.o"
  "CMakeFiles/octo_cluster.dir/worker.cc.o.d"
  "libocto_cluster.a"
  "libocto_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
