file(REMOVE_RECURSE
  "libocto_storage.a"
)
