
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_store.cc" "src/storage/CMakeFiles/octo_storage.dir/block_store.cc.o" "gcc" "src/storage/CMakeFiles/octo_storage.dir/block_store.cc.o.d"
  "/root/repo/src/storage/checksum.cc" "src/storage/CMakeFiles/octo_storage.dir/checksum.cc.o" "gcc" "src/storage/CMakeFiles/octo_storage.dir/checksum.cc.o.d"
  "/root/repo/src/storage/media_type.cc" "src/storage/CMakeFiles/octo_storage.dir/media_type.cc.o" "gcc" "src/storage/CMakeFiles/octo_storage.dir/media_type.cc.o.d"
  "/root/repo/src/storage/throughput_profiler.cc" "src/storage/CMakeFiles/octo_storage.dir/throughput_profiler.cc.o" "gcc" "src/storage/CMakeFiles/octo_storage.dir/throughput_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/octo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/octo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/octo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
