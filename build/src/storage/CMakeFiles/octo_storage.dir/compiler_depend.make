# Empty compiler generated dependencies file for octo_storage.
# This may be replaced when dependencies are built.
