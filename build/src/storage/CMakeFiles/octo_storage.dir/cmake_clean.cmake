file(REMOVE_RECURSE
  "CMakeFiles/octo_storage.dir/block_store.cc.o"
  "CMakeFiles/octo_storage.dir/block_store.cc.o.d"
  "CMakeFiles/octo_storage.dir/checksum.cc.o"
  "CMakeFiles/octo_storage.dir/checksum.cc.o.d"
  "CMakeFiles/octo_storage.dir/media_type.cc.o"
  "CMakeFiles/octo_storage.dir/media_type.cc.o.d"
  "CMakeFiles/octo_storage.dir/throughput_profiler.cc.o"
  "CMakeFiles/octo_storage.dir/throughput_profiler.cc.o.d"
  "libocto_storage.a"
  "libocto_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
