file(REMOVE_RECURSE
  "libocto_namespacefs.a"
)
