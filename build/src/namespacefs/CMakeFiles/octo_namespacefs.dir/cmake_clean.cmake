file(REMOVE_RECURSE
  "CMakeFiles/octo_namespacefs.dir/edit_log.cc.o"
  "CMakeFiles/octo_namespacefs.dir/edit_log.cc.o.d"
  "CMakeFiles/octo_namespacefs.dir/fsimage.cc.o"
  "CMakeFiles/octo_namespacefs.dir/fsimage.cc.o.d"
  "CMakeFiles/octo_namespacefs.dir/lease_manager.cc.o"
  "CMakeFiles/octo_namespacefs.dir/lease_manager.cc.o.d"
  "CMakeFiles/octo_namespacefs.dir/namespace_tree.cc.o"
  "CMakeFiles/octo_namespacefs.dir/namespace_tree.cc.o.d"
  "CMakeFiles/octo_namespacefs.dir/path.cc.o"
  "CMakeFiles/octo_namespacefs.dir/path.cc.o.d"
  "libocto_namespacefs.a"
  "libocto_namespacefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_namespacefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
