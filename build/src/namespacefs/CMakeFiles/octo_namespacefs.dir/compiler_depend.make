# Empty compiler generated dependencies file for octo_namespacefs.
# This may be replaced when dependencies are built.
