
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_state.cc" "src/core/CMakeFiles/octo_core.dir/cluster_state.cc.o" "gcc" "src/core/CMakeFiles/octo_core.dir/cluster_state.cc.o.d"
  "/root/repo/src/core/objectives.cc" "src/core/CMakeFiles/octo_core.dir/objectives.cc.o" "gcc" "src/core/CMakeFiles/octo_core.dir/objectives.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/octo_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/octo_core.dir/placement.cc.o.d"
  "/root/repo/src/core/replication_vector.cc" "src/core/CMakeFiles/octo_core.dir/replication_vector.cc.o" "gcc" "src/core/CMakeFiles/octo_core.dir/replication_vector.cc.o.d"
  "/root/repo/src/core/retrieval.cc" "src/core/CMakeFiles/octo_core.dir/retrieval.cc.o" "gcc" "src/core/CMakeFiles/octo_core.dir/retrieval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/octo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/octo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/octo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/octo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
