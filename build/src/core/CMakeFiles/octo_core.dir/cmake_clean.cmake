file(REMOVE_RECURSE
  "CMakeFiles/octo_core.dir/cluster_state.cc.o"
  "CMakeFiles/octo_core.dir/cluster_state.cc.o.d"
  "CMakeFiles/octo_core.dir/objectives.cc.o"
  "CMakeFiles/octo_core.dir/objectives.cc.o.d"
  "CMakeFiles/octo_core.dir/placement.cc.o"
  "CMakeFiles/octo_core.dir/placement.cc.o.d"
  "CMakeFiles/octo_core.dir/replication_vector.cc.o"
  "CMakeFiles/octo_core.dir/replication_vector.cc.o.d"
  "CMakeFiles/octo_core.dir/retrieval.cc.o"
  "CMakeFiles/octo_core.dir/retrieval.cc.o.d"
  "libocto_core.a"
  "libocto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
