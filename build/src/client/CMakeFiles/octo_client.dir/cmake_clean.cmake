file(REMOVE_RECURSE
  "CMakeFiles/octo_client.dir/federated_file_system.cc.o"
  "CMakeFiles/octo_client.dir/federated_file_system.cc.o.d"
  "CMakeFiles/octo_client.dir/file_system.cc.o"
  "CMakeFiles/octo_client.dir/file_system.cc.o.d"
  "libocto_client.a"
  "libocto_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
