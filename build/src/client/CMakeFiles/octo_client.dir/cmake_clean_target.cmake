file(REMOVE_RECURSE
  "libocto_client.a"
)
