# Empty compiler generated dependencies file for octo_client.
# This may be replaced when dependencies are built.
