file(REMOVE_RECURSE
  "CMakeFiles/octo_workload.dir/dfsio.cc.o"
  "CMakeFiles/octo_workload.dir/dfsio.cc.o.d"
  "CMakeFiles/octo_workload.dir/slive.cc.o"
  "CMakeFiles/octo_workload.dir/slive.cc.o.d"
  "CMakeFiles/octo_workload.dir/transfer_engine.cc.o"
  "CMakeFiles/octo_workload.dir/transfer_engine.cc.o.d"
  "libocto_workload.a"
  "libocto_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
