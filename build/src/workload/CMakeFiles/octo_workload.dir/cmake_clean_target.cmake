file(REMOVE_RECURSE
  "libocto_workload.a"
)
