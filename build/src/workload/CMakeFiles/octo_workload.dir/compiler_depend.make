# Empty compiler generated dependencies file for octo_workload.
# This may be replaced when dependencies are built.
