file(REMOVE_RECURSE
  "CMakeFiles/octo_sim.dir/simulation.cc.o"
  "CMakeFiles/octo_sim.dir/simulation.cc.o.d"
  "libocto_sim.a"
  "libocto_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
