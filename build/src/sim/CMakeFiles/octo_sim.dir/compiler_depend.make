# Empty compiler generated dependencies file for octo_sim.
# This may be replaced when dependencies are built.
