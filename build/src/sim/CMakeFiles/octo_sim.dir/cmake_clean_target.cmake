file(REMOVE_RECURSE
  "libocto_sim.a"
)
