# Empty compiler generated dependencies file for octo_remote.
# This may be replaced when dependencies are built.
