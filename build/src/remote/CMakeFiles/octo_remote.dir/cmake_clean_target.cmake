file(REMOVE_RECURSE
  "libocto_remote.a"
)
