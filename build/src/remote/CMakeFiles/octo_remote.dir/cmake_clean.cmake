file(REMOVE_RECURSE
  "CMakeFiles/octo_remote.dir/external_store.cc.o"
  "CMakeFiles/octo_remote.dir/external_store.cc.o.d"
  "CMakeFiles/octo_remote.dir/remote_tier.cc.o"
  "CMakeFiles/octo_remote.dir/remote_tier.cc.o.d"
  "CMakeFiles/octo_remote.dir/standalone_mount.cc.o"
  "CMakeFiles/octo_remote.dir/standalone_mount.cc.o.d"
  "libocto_remote.a"
  "libocto_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
