# Empty compiler generated dependencies file for octo_topology.
# This may be replaced when dependencies are built.
