file(REMOVE_RECURSE
  "CMakeFiles/octo_topology.dir/network_location.cc.o"
  "CMakeFiles/octo_topology.dir/network_location.cc.o.d"
  "CMakeFiles/octo_topology.dir/topology.cc.o"
  "CMakeFiles/octo_topology.dir/topology.cc.o.d"
  "libocto_topology.a"
  "libocto_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
