file(REMOVE_RECURSE
  "libocto_topology.a"
)
