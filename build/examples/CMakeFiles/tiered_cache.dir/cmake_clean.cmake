file(REMOVE_RECURSE
  "CMakeFiles/tiered_cache.dir/tiered_cache.cpp.o"
  "CMakeFiles/tiered_cache.dir/tiered_cache.cpp.o.d"
  "tiered_cache"
  "tiered_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
