# Empty compiler generated dependencies file for tiered_cache.
# This may be replaced when dependencies are built.
