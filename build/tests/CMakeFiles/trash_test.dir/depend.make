# Empty dependencies file for trash_test.
# This may be replaced when dependencies are built.
