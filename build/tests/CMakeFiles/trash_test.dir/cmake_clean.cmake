file(REMOVE_RECURSE
  "CMakeFiles/trash_test.dir/trash_test.cc.o"
  "CMakeFiles/trash_test.dir/trash_test.cc.o.d"
  "trash_test"
  "trash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
