# Empty dependencies file for cluster_state_test.
# This may be replaced when dependencies are built.
