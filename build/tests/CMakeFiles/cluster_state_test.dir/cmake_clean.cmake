file(REMOVE_RECURSE
  "CMakeFiles/cluster_state_test.dir/cluster_state_test.cc.o"
  "CMakeFiles/cluster_state_test.dir/cluster_state_test.cc.o.d"
  "cluster_state_test"
  "cluster_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
