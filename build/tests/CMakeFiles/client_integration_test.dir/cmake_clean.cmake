file(REMOVE_RECURSE
  "CMakeFiles/client_integration_test.dir/client_integration_test.cc.o"
  "CMakeFiles/client_integration_test.dir/client_integration_test.cc.o.d"
  "client_integration_test"
  "client_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
