file(REMOVE_RECURSE
  "CMakeFiles/editlog_fsimage_test.dir/editlog_fsimage_test.cc.o"
  "CMakeFiles/editlog_fsimage_test.dir/editlog_fsimage_test.cc.o.d"
  "editlog_fsimage_test"
  "editlog_fsimage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/editlog_fsimage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
