# Empty compiler generated dependencies file for editlog_fsimage_test.
# This may be replaced when dependencies are built.
