# Empty dependencies file for cluster_services_test.
# This may be replaced when dependencies are built.
