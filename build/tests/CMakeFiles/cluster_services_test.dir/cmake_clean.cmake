file(REMOVE_RECURSE
  "CMakeFiles/cluster_services_test.dir/cluster_services_test.cc.o"
  "CMakeFiles/cluster_services_test.dir/cluster_services_test.cc.o.d"
  "cluster_services_test"
  "cluster_services_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
