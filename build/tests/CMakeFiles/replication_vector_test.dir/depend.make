# Empty dependencies file for replication_vector_test.
# This may be replaced when dependencies are built.
