file(REMOVE_RECURSE
  "CMakeFiles/replication_vector_test.dir/replication_vector_test.cc.o"
  "CMakeFiles/replication_vector_test.dir/replication_vector_test.cc.o.d"
  "replication_vector_test"
  "replication_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
