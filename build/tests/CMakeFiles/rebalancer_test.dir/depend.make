# Empty dependencies file for rebalancer_test.
# This may be replaced when dependencies are built.
