file(REMOVE_RECURSE
  "CMakeFiles/rebalancer_test.dir/rebalancer_test.cc.o"
  "CMakeFiles/rebalancer_test.dir/rebalancer_test.cc.o.d"
  "rebalancer_test"
  "rebalancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
