file(REMOVE_RECURSE
  "CMakeFiles/transfer_engine_test.dir/transfer_engine_test.cc.o"
  "CMakeFiles/transfer_engine_test.dir/transfer_engine_test.cc.o.d"
  "transfer_engine_test"
  "transfer_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
