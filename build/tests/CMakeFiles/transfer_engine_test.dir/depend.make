# Empty dependencies file for transfer_engine_test.
# This may be replaced when dependencies are built.
