# Empty compiler generated dependencies file for federated_fs_test.
# This may be replaced when dependencies are built.
