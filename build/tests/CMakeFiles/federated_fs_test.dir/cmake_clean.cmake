file(REMOVE_RECURSE
  "CMakeFiles/federated_fs_test.dir/federated_fs_test.cc.o"
  "CMakeFiles/federated_fs_test.dir/federated_fs_test.cc.o.d"
  "federated_fs_test"
  "federated_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
