# Empty compiler generated dependencies file for namespace_test.
# This may be replaced when dependencies are built.
