file(REMOVE_RECURSE
  "CMakeFiles/namespace_test.dir/namespace_test.cc.o"
  "CMakeFiles/namespace_test.dir/namespace_test.cc.o.d"
  "namespace_test"
  "namespace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namespace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
