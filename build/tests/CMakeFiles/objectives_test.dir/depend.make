# Empty dependencies file for objectives_test.
# This may be replaced when dependencies are built.
