file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_tier.dir/bench_remote_tier.cc.o"
  "CMakeFiles/bench_remote_tier.dir/bench_remote_tier.cc.o.d"
  "bench_remote_tier"
  "bench_remote_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
