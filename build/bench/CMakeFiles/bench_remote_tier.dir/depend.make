# Empty dependencies file for bench_remote_tier.
# This may be replaced when dependencies are built.
