file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pegasus.dir/bench_fig7_pegasus.cc.o"
  "CMakeFiles/bench_fig7_pegasus.dir/bench_fig7_pegasus.cc.o.d"
  "bench_fig7_pegasus"
  "bench_fig7_pegasus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pegasus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
