
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_placement.cc" "bench/CMakeFiles/bench_fig3_placement.dir/bench_fig3_placement.cc.o" "gcc" "bench/CMakeFiles/bench_fig3_placement.dir/bench_fig3_placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/octo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/octo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/namespacefs/CMakeFiles/octo_namespacefs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/octo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/octo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/octo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/octo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/octo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
