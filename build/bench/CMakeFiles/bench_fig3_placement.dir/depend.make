# Empty dependencies file for bench_fig3_placement.
# This may be replaced when dependencies are built.
