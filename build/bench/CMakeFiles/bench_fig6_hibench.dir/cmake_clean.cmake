file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hibench.dir/bench_fig6_hibench.cc.o"
  "CMakeFiles/bench_fig6_hibench.dir/bench_fig6_hibench.cc.o.d"
  "bench_fig6_hibench"
  "bench_fig6_hibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
