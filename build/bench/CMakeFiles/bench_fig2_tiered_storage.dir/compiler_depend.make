# Empty compiler generated dependencies file for bench_fig2_tiered_storage.
# This may be replaced when dependencies are built.
