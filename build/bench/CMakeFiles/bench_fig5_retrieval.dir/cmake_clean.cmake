file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_retrieval.dir/bench_fig5_retrieval.cc.o"
  "CMakeFiles/bench_fig5_retrieval.dir/bench_fig5_retrieval.cc.o.d"
  "bench_fig5_retrieval"
  "bench_fig5_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
