# Empty dependencies file for bench_table3_namespace.
# This may be replaced when dependencies are built.
