file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_namespace.dir/bench_table3_namespace.cc.o"
  "CMakeFiles/bench_table3_namespace.dir/bench_table3_namespace.cc.o.d"
  "bench_table3_namespace"
  "bench_table3_namespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_namespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
