file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_retrieval.dir/bench_ablation_retrieval.cc.o"
  "CMakeFiles/bench_ablation_retrieval.dir/bench_ablation_retrieval.cc.o.d"
  "bench_ablation_retrieval"
  "bench_ablation_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
