# Empty compiler generated dependencies file for bench_table2_media_throughput.
# This may be replaced when dependencies are built.
